"""Tests for the circuit breaker and its ladder/cache integrations."""

import numpy as np
import pytest

from repro.errors import CircuitOpenError
from repro.robust.breaker import CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.t = 100.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker("test", failure_threshold=3, reset_timeout=10.0,
                          clock=clock)


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.retry_after() == 0.0

    def test_trips_at_threshold(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert "open:test" in breaker.events

    def test_success_resets_the_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # non-consecutive failures don't trip

    def test_half_opens_after_timeout(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.t += 10.0
        assert breaker.state == "half-open"

    def test_half_open_admits_exactly_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.t += 10.0
        assert breaker.allow()        # the probe
        assert not breaker.allow()    # concurrent caller refused
        breaker.record_success()
        assert breaker.state == "closed"
        assert "closed:test" in breaker.events

    def test_failed_probe_reopens(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.t += 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.t += 10.0
        assert breaker.allow()  # half-opens again after another timeout

    def test_call_raises_typed_error_when_open(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        with pytest.raises(CircuitOpenError) as exc_info:
            breaker.call(lambda: 1)
        assert exc_info.value.breaker == "test"
        assert exc_info.value.retry_after > 0

    def test_call_records_outcomes(self, breaker):
        assert breaker.call(lambda: 42) == 42
        with pytest.raises(ValueError):
            breaker.call(self._boom)
        assert breaker.consecutive_failures == 1

    @staticmethod
    def _boom():
        raise ValueError("no")

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", reset_timeout=0.0)


@pytest.fixture(scope="module")
def train(spec_archive):
    from repro.specdata.schema import records_to_dataset

    recs = [r for r in spec_archive("opteron-2") if r.year == 2005]
    return records_to_dataset(recs)


class TestLadderIntegration:
    """While the breaker is open the ladder skips its guarded NN rungs."""

    def _ladder(self):
        from repro.robust import ValidationGate, default_ladder

        return default_ladder(seed=0, gate=ValidationGate())

    def test_open_breaker_skips_nn_rungs(self, clock, train):
        from repro.core.models import model_builders

        ladder = self._ladder()
        breaker = CircuitBreaker("fit", failure_threshold=1,
                                 reset_timeout=1000.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        builders = model_builders(("NN-E",), seed=0)
        rng = np.random.default_rng(0)
        model, estimate, walk = ladder.fit_model(
            "NN-E", builders["NN-E"], train, rng, n_cv_reps=2,
            breaker=breaker)
        assert walk.deployed in ("LR-S", "LR-E", "mean-baseline")
        skipped = [s for s in walk.steps if s.outcome == "breaker-open"]
        assert [s.label for s in skipped] == ["NN-E", "NN-Q"]

    def test_closed_breaker_is_invisible(self, clock, train):
        """Clean runs with a closed breaker stay bit-identical."""
        from repro.core.models import model_builders

        builders = model_builders(("LR-E",), seed=0)
        ladder = self._ladder()
        out_plain = ladder.fit_model(
            "LR-E", builders["LR-E"], train, np.random.default_rng(7),
            n_cv_reps=2)
        breaker = CircuitBreaker("fit", clock=clock)
        out_guarded = ladder.fit_model(
            "LR-E", builders["LR-E"], train, np.random.default_rng(7),
            n_cv_reps=2, breaker=breaker, guarded_rungs=("LR-E",))
        assert out_plain[1].mean == out_guarded[1].mean
        assert np.array_equal(out_plain[0].predict(train),
                              out_guarded[0].predict(train))
        assert breaker.state == "closed"  # acceptance recorded a success


class TestCacheDiskBreaker:
    """An open disk breaker degrades the cache to memory-only."""

    def test_disk_skipped_while_open(self, tmp_path, clock):
        from repro.cache.result_cache import ResultCache

        breaker = CircuitBreaker("disk", failure_threshold=1,
                                 reset_timeout=1000.0, clock=clock)
        cache = ResultCache(max_entries=4, disk_root=tmp_path / "d",
                            disk_breaker=breaker)
        assert cache.get_or_compute(("k",), lambda: 1) == 1
        assert len(cache.disk) == 1  # closed breaker: disk written
        breaker.record_failure()
        cache2 = ResultCache(max_entries=4, disk_root=tmp_path / "d",
                             disk_breaker=breaker)
        assert cache2.get_or_compute(("k",), lambda: 99) == 99  # disk skipped
        assert any(e.startswith("breaker:disk-skip") for e in cache2.events)

    def test_io_errors_trip_the_breaker(self, tmp_path, clock, monkeypatch):
        from repro.cache.disk import DiskStore
        from repro.cache.result_cache import ResultCache

        breaker = CircuitBreaker("disk", failure_threshold=2,
                                 reset_timeout=1000.0, clock=clock)
        cache = ResultCache(max_entries=4, disk_root=tmp_path / "d",
                            disk_breaker=breaker)

        def sick_put(key, value):
            cache.disk.io_errors += 1

        monkeypatch.setattr(cache.disk, "put", sick_put)
        monkeypatch.setattr(
            DiskStore, "get",
            lambda self, key, default=None: self.__dict__.__setitem__(
                "io_errors", self.io_errors + 1) or default)
        cache.get_or_compute(("a",), lambda: 1)
        cache.get_or_compute(("b",), lambda: 2)
        assert breaker.state == "open"
        # While open, computes still succeed from memory/fresh compute.
        assert cache.get_or_compute(("c",), lambda: 3) == 3

    def test_namespace_scopes_keys(self, tmp_path):
        from repro.cache.result_cache import ResultCache

        shared = tmp_path / "d"
        a = ResultCache(disk_root=shared, namespace="tenant-a")
        b = ResultCache(disk_root=shared, namespace="tenant-b")
        plain = ResultCache(disk_root=shared)
        key = ("sweep", "gcc")
        assert len({a.key_for(key), b.key_for(key), plain.key_for(key)}) == 3
        # Same namespace across instances (processes) shares entries.
        a.get_or_compute(key, lambda: "A")
        a2 = ResultCache(disk_root=shared, namespace="tenant-a")
        assert a2.get_or_compute(key, lambda: "fresh") == "A"
        assert b.get_or_compute(key, lambda: "B") == "B"
