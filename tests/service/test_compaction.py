"""Crash-consistent compaction: fold identity, swap atomicity, GC, fsck."""

import json

import pytest

from repro.errors import ServiceError
from repro.robust import SimulatedCrash
from repro.service import (
    CompactionPolicy,
    JobSpec,
    JobSpool,
    SpoolConfig,
    compact,
    maybe_compact,
    read_snapshot,
    should_compact,
    verify_spool,
)
from repro.service.compaction import (
    CRASH_POINTS,
    render_verify,
    spool_history_events,
)
from repro.service.spool import _SnapshotRaced


def spec(start=0, stop=8, app="gcc", **kw):
    return JobSpec(kind="sweep", app=app, start=start, stop=stop,
                   n_instructions=1_000_000, **kw)


@pytest.fixture()
def spool(tmp_path):
    return JobSpool.ensure(tmp_path / "spool",
                           SpoolConfig(max_depth=16, lease_ttl=10.0))


def view_state(views):
    """Comparable projection of a jobs() fold."""
    return {jid: (v.state, v.worker, v.n_leases, v.n_expired, v.error_type,
                  v.spec.as_dict()) for jid, v in views.items()}


def populate(spool):
    """One job in each lifecycle corner; returns ids by role."""
    done = spool.submit(spec(start=0, stop=1))
    spool.claim("w0", now=100.0)
    spool.complete(done, "w0", {"cycles": [1, 2]}, elapsed=0.3)
    failed = spool.submit(spec(start=1, stop=2))
    spool.claim("w0", now=101.0)
    spool.fail(failed, "w0", "TaskFailed", "boom", elapsed=0.1)
    running = spool.submit(spec(start=2, stop=3))
    spool.claim("w1", now=102.0)
    pending = spool.submit(spec(start=3, stop=4))
    return {"done": done, "failed": failed, "running": running,
            "pending": pending}


class TestCompactRoundTrip:
    def test_fold_is_identical_before_and_after(self, spool):
        ids = populate(spool)
        before = view_state(spool.jobs(now=105.0))
        stats = compact(spool)
        assert view_state(spool.jobs(now=105.0)) == before
        assert stats.generation == 1
        assert stats.n_jobs == 4
        assert stats.n_live == 2 and stats.n_terminal == 2
        assert spool.result(ids["done"]) == {"cycles": [1, 2]}

    def test_log_shrinks_to_one_marker_line(self, spool):
        populate(spool)
        compact(spool)
        lines = spool.log_path.read_text().splitlines()
        assert len(lines) == 1
        marker = json.loads(lines[0])
        assert marker["ev"] == "compact" and marker["gen"] == 1

    def test_submission_order_survives(self, spool):
        ids = populate(spool)
        order = list(spool.jobs(now=105.0))
        compact(spool)
        assert list(spool.jobs(now=105.0)) == order
        assert order[0] == ids["done"]

    def test_post_compact_tail_folds_onto_snapshot(self, spool):
        ids = populate(spool)
        compact(spool)
        job = spool.claim("w2", now=105.0)  # running's lease still held
        assert job.id == ids["pending"]
        spool.complete(ids["pending"], "w2", "late", elapsed=0.2)
        views = spool.jobs(now=106.0)
        assert views[ids["pending"]].state == "done"
        assert spool.result(ids["pending"]) == "late"

    def test_dedup_survives_compaction(self, spool):
        ids = populate(spool)
        compact(spool)
        assert spool.submit(spec(start=0, stop=1)) == ids["done"]
        assert spool.jobs()[ids["done"]].state == "done"  # still deduped

    def test_generations_increment_and_fold_stays_stable(self, spool):
        populate(spool)
        compact(spool)
        before = view_state(spool.jobs(now=300.0))
        stats = compact(spool)
        assert stats.generation == 2
        assert stats.n_events_folded == 0  # nothing new since gen 1
        assert view_state(spool.jobs(now=300.0)) == before
        assert read_snapshot(spool.root)["generation"] == 2

    def test_reopen_reads_snapshot_plus_tail(self, spool, tmp_path):
        ids = populate(spool)
        before = view_state(spool.jobs(now=105.0))
        compact(spool)
        reopened = JobSpool.open(tmp_path / "spool")
        assert view_state(reopened.jobs(now=105.0)) == before
        assert reopened.result(ids["done"]) == {"cycles": [1, 2]}


class TestCrashMatrix:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_crash_at_every_point_loses_nothing(self, spool, tmp_path, point):
        ids = populate(spool)
        oracle = view_state(spool.jobs(now=105.0))
        with pytest.raises(SimulatedCrash):
            compact(spool, crash_at=point)
        # The "process" died; a fresh open must fold to the oracle.
        survivor = JobSpool.open(tmp_path / "spool")
        assert view_state(survivor.jobs(now=105.0)) == oracle
        assert survivor.result(ids["done"]) == {"cycles": [1, 2]}
        report = verify_spool(survivor.root)
        assert report["ok"], render_verify(report)
        # The spool keeps working: append, fold, then converge via compact.
        claimed = survivor.claim("w9", now=105.0)  # running's lease held
        assert claimed.id == ids["pending"]
        assert survivor.jobs(now=105.0)[ids["pending"]].state == "running"
        stats = compact(survivor)
        assert view_state(survivor.jobs(now=105.0))[ids["pending"]][0] \
            == "running"
        assert stats.generation >= 1
        assert verify_spool(survivor.root)["ok"]

    def test_crash_window_does_not_double_fold_leases(self, spool, tmp_path):
        """New snapshot + old log is the dangerous window: replaying the
        already-folded lease events would inflate n_leases."""
        ids = populate(spool)
        with pytest.raises(SimulatedCrash):
            compact(spool, crash_at="post-snapshot-rename")
        views = JobSpool.open(tmp_path / "spool").jobs(now=105.0)
        assert views[ids["running"]].n_leases == 1  # not 2

    def test_append_after_crash_window_is_not_skipped(self, spool, tmp_path):
        """The snapshot's skip count must not swallow post-crash appends."""
        populate(spool)
        with pytest.raises(SimulatedCrash):
            compact(spool, crash_at="post-snapshot-rename")
        survivor = JobSpool.open(tmp_path / "spool")
        late = survivor.submit(spec(start=7, stop=8))
        assert survivor.jobs()[late].state == "pending"
        compact(survivor)
        assert survivor.jobs()[late].state == "pending"

    def test_unknown_crash_point_rejected(self, spool):
        with pytest.raises(ValueError, match="unknown crash point"):
            compact(spool, crash_at="mid-air")


class TestGC:
    def test_terminal_checkpoints_and_orphan_results_reclaimed(self, spool):
        ids = populate(spool)
        for role in ("done", "failed", "running"):
            path = spool.checkpoint_path(ids[role])
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text('{"fp": "x"}\n')
        spool.results.put("0" * 32, {"orphan": True})  # no such job
        stats = compact(spool)
        assert stats.gc_checkpoints == 2  # done + failed; running kept
        assert spool.checkpoint_path(ids["running"]).exists()
        assert not spool.checkpoint_path(ids["done"]).exists()
        assert spool.result(ids["done"]) == {"cycles": [1, 2]}  # kept
        assert spool.result("0" * 32, default="gone") == "gone"

    def test_gc_can_be_disabled(self, spool):
        ids = populate(spool)
        path = spool.checkpoint_path(ids["done"])
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"fp": "x"}\n')
        stats = compact(spool, CompactionPolicy(gc_checkpoints=False,
                                                gc_results=False))
        assert stats.gc_checkpoints == 0 and stats.gc_results == 0
        assert path.exists()

    def test_retain_terminal_prunes_oldest_and_their_results(self, spool):
        ids = populate(spool)
        stats = compact(spool, CompactionPolicy(retain_terminal=1))
        # done (older) pruned, failed (newer) kept.
        assert stats.n_pruned == 1 and stats.n_terminal == 1
        views = spool.jobs(now=105.0)
        assert ids["done"] not in views
        assert views[ids["failed"]].state == "failed"
        assert spool.result(ids["done"], default="gone") == "gone"
        # A pruned job re-submits as brand new instead of deduping.
        again = spool.submit(spec(start=0, stop=1))
        assert spool.jobs()[again].state == "pending"


class TestPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CompactionPolicy(max_log_bytes=0)
        with pytest.raises(ValueError):
            CompactionPolicy(max_events=0)
        with pytest.raises(ValueError):
            CompactionPolicy(retain_terminal=-1)

    def test_should_compact_thresholds(self, spool):
        assert not should_compact(spool)  # empty log, default policy
        populate(spool)
        assert should_compact(spool, CompactionPolicy(max_log_bytes=1))
        assert not should_compact(
            spool, CompactionPolicy(max_log_bytes=None, max_events=4096))
        assert should_compact(
            spool, CompactionPolicy(max_log_bytes=None, max_events=1))

    def test_maybe_compact_respects_threshold(self, spool):
        populate(spool)
        assert maybe_compact(spool) is None  # default thresholds: far away
        stats = maybe_compact(spool, CompactionPolicy(max_log_bytes=1))
        assert stats is not None and stats.generation == 1


class TestReconcile:
    def test_marker_ahead_of_snapshot_raises_raced(self, spool):
        populate(spool)
        compact(spool)
        snap = read_snapshot(spool.root)
        stale = dict(snap, generation=snap["generation"] - 1)
        parsed, _ = spool._parse_log()
        with pytest.raises(_SnapshotRaced):
            JobSpool._reconcile(stale, parsed)


class TestHistoryEvents:
    def test_one_submit_per_job_after_compaction(self, spool):
        ids = populate(spool)
        before = [e["id"] for e in spool_history_events(spool.root)
                  if e["ev"] == "submit"]
        compact(spool)
        after = [e["id"] for e in spool_history_events(spool.root)
                 if e["ev"] == "submit"]
        assert before == after == [ids["done"], ids["failed"],
                                   ids["running"], ids["pending"]]


class TestVerify:
    def test_healthy_spool_verifies_ok(self, spool):
        populate(spool)
        report = verify_spool(spool.root)
        assert report["ok"] and report["schema"] == "repro-spoolverify/1"
        assert "spool OK" in render_verify(report)

    def test_missing_directory_fails(self, tmp_path):
        report = verify_spool(tmp_path / "nowhere")
        assert not report["ok"]
        assert report["checks"][0]["name"] == "spool-dir"

    def test_lost_snapshot_after_swap_fails_generation_check(self, spool):
        populate(spool)
        compact(spool)
        spool.snapshot_path.unlink()  # snapshot rolled back / lost
        report = verify_spool(spool.root)
        assert not report["ok"]
        gen = next(c for c in report["checks"] if c["name"] == "generation")
        assert not gen["passed"]

    def test_missing_result_fails(self, spool):
        ids = populate(spool)
        spool.results._path(ids["done"]).unlink()
        report = verify_spool(spool.root)
        assert not report["ok"]
        res = next(c for c in report["checks"] if c["name"] == "results")
        assert not res["passed"]

    def test_expected_jobs_oracle(self, spool):
        ids = populate(spool)
        # verify_spool folds at real wall-clock time, so the 10s lease
        # taken at t=102 has long expired: the job is claimable (pending).
        ok = verify_spool(spool.root, expect_jobs={
            ids["done"]: "done", ids["failed"]: "failed",
            ids["running"]: "pending", ids["pending"]: "pending"})
        assert ok["ok"]
        bad = verify_spool(spool.root, expect_jobs={
            ids["done"]: "failed",          # state mismatch
            "f" * 32: "done",               # lost
        })
        assert not bad["ok"]
        check = next(c for c in bad["checks"] if c["name"] == "expected-jobs")
        assert "lost" in check["detail"] and "mismatch" in check["detail"]

    def test_interior_corruption_fails_log_and_fold(self, spool):
        populate(spool)
        with open(spool.log_path, "a", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"ev": "noop"}) + "\n")
        report = verify_spool(spool.root)
        assert not report["ok"]
        names = {c["name"]: c["passed"] for c in report["checks"]}
        assert not names["log"] and not names["fold"]

    def test_torn_tail_is_informational_not_fatal(self, spool):
        populate(spool)
        with open(spool.log_path, "a", encoding="utf-8") as fh:
            fh.write('{"ev": "subm')
        report = verify_spool(spool.root)
        assert report["ok"]
        log = next(c for c in report["checks"] if c["name"] == "log")
        assert "torn tail" in log["detail"]


class TestSnapshotParsing:
    def test_corrupt_snapshot_is_typed(self, spool):
        populate(spool)
        compact(spool)
        spool.snapshot_path.write_text("not json")
        with pytest.raises(ServiceError):
            read_snapshot(spool.root)
        with pytest.raises(ServiceError):
            spool.jobs()

    def test_unknown_snapshot_schema_is_typed(self, spool):
        compact(spool)
        doc = json.loads(spool.snapshot_path.read_text())
        doc["schema"] = "repro-spoolsnap/99"
        spool.snapshot_path.write_text(json.dumps(doc))
        with pytest.raises(ServiceError, match="schema"):
            spool.jobs()
