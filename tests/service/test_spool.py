"""Tests for the durable job spool: fold semantics, leases, backpressure."""

import json
import time

import pytest

from repro.errors import CircuitOpenError, ServiceError, ServiceOverloadError
from repro.obs.metrics import default_registry
from repro.robust import DiskFaultInjector, SimulatedCrash
from repro.robust import diskchaos
from repro.robust.breaker import CircuitBreaker
from repro.service import JobSpec, JobSpool, SpoolConfig, job_id


def spec(start=0, stop=8, app="gcc", **kw):
    return JobSpec(kind="sweep", app=app, start=start, stop=stop,
                   n_instructions=1_000_000, **kw)


@pytest.fixture()
def spool(tmp_path):
    return JobSpool.ensure(tmp_path / "spool",
                           SpoolConfig(max_depth=3, lease_ttl=10.0))


class TestLifecycle:
    def test_ensure_persists_config(self, tmp_path):
        root = tmp_path / "spool"
        JobSpool.ensure(root, SpoolConfig(max_depth=7, lease_ttl=3.0))
        reopened = JobSpool.open(root)
        assert reopened.config.max_depth == 7
        assert reopened.config.lease_ttl == 3.0

    def test_ensure_without_config_honors_existing(self, tmp_path):
        root = tmp_path / "spool"
        JobSpool.ensure(root, SpoolConfig(max_depth=7))
        again = JobSpool.ensure(root)  # a client joining an existing spool
        assert again.config.max_depth == 7

    def test_open_requires_existing_spool(self, tmp_path):
        with pytest.raises(ServiceError, match="no spool"):
            JobSpool.open(tmp_path / "nowhere")

    def test_job_id_is_content_addressed(self, spool):
        assert job_id(spec()) == job_id(spec())
        assert job_id(spec()) != job_id(spec(start=1))
        jid = spool.submit(spec())
        assert jid == job_id(spec())


class TestSubmit:
    def test_submit_then_pending(self, spool):
        jid = spool.submit(spec())
        job = spool.jobs()[jid]
        assert job.state == "pending"
        assert job.spec.app == "gcc"
        assert spool.depth() == 1

    def test_duplicate_submit_dedups(self, spool):
        a = spool.submit(spec())
        b = spool.submit(spec())
        assert a == b
        assert spool.depth() == 1

    def test_overload_sheds_with_typed_error(self, spool):
        for i in range(3):
            spool.submit(spec(start=i, stop=i + 1))
        with pytest.raises(ServiceOverloadError) as exc_info:
            spool.submit(spec(start=9, stop=10))
        assert exc_info.value.depth == 3
        assert exc_info.value.max_depth == 3
        # Dedup of an already-queued job is not an overload.
        assert spool.submit(spec(start=0, stop=1)) == job_id(spec(start=0, stop=1))

    def test_terminal_jobs_free_queue_slots(self, spool):
        jids = [spool.submit(spec(start=i, stop=i + 1)) for i in range(3)]
        spool.complete(jids[0], "w0", {"ok": True}, elapsed=0.1)
        spool.submit(spec(start=9, stop=10))  # slot freed, accepted
        assert spool.depth() == 3


class TestLeases:
    def test_claim_is_fifo(self, spool):
        first = spool.submit(spec(start=0, stop=1))
        second = spool.submit(spec(start=1, stop=2))
        assert spool.claim("w0", now=100.0).id == first
        assert spool.claim("w1", now=100.0).id == second
        assert spool.claim("w2", now=100.0) is None

    def test_active_lease_blocks_reclaim(self, spool):
        spool.submit(spec())
        job = spool.claim("w0", now=100.0)
        assert job.state == "running"
        assert job.lease_expires == 110.0
        assert spool.claim("w1", now=105.0) is None

    def test_expired_lease_is_redispatched(self, spool):
        jid = spool.submit(spec())
        spool.claim("w0", now=100.0)
        again = spool.claim("w1", now=111.0)  # past the 10s ttl
        assert again.id == jid
        assert again.worker == "w1"
        assert again.n_leases == 2
        view = spool.jobs(now=112.0)[jid]
        assert view.n_expired == 1
        assert view.state == "running"

    def test_stale_leases_reports_expired_holders(self, spool):
        jid = spool.submit(spec())
        assert spool.stale_leases(now=100.0) == []  # never leased: not stale
        spool.claim("w0", now=100.0)
        assert spool.stale_leases(now=105.0) == []  # still held
        stale = spool.stale_leases(now=120.0)
        assert [v.id for v in stale] == [jid]


class TestRenewal:
    def test_renew_extends_active_lease(self, spool):
        """A renewing holder keeps ownership past the original TTL."""
        jid = spool.submit(spec())
        spool.claim("w0", now=100.0)
        spool.renew(jid, "w0", now=108.0)  # new expiry: 108 + 10
        assert spool.claim("w1", now=111.0) is None  # would expire unrenewed
        view = spool.jobs(now=111.0)[jid]
        assert view.state == "running"
        assert view.worker == "w0"
        assert view.lease_expires == 118.0
        assert view.n_leases == 1
        assert view.n_expired == 0

    def test_renew_from_preempted_holder_is_ignored(self, spool):
        """Only the current lease holder may extend the lease."""
        jid = spool.submit(spec())
        spool.claim("w0", now=100.0)
        spool.claim("w1", now=111.0)  # w0 expired; re-dispatched to w1
        spool.renew(jid, "w0", now=112.0)  # stale holder wakes up late
        view = spool.jobs(now=112.0)[jid]
        assert view.worker == "w1"
        assert view.lease_expires == 121.0  # w1's lease, untouched

    def test_renew_after_terminal_is_ignored(self, spool):
        jid = spool.submit(spec())
        spool.claim("w0", now=100.0)
        spool.complete(jid, "w0", 1, elapsed=0.1)
        spool.renew(jid, "w0", now=105.0)
        assert spool.jobs(now=1e9)[jid].state == "done"


class TestTerminal:
    def test_complete_stores_result(self, spool):
        jid = spool.submit(spec())
        spool.claim("w0", now=100.0)
        spool.complete(jid, "w0", {"cycles": [1, 2]}, elapsed=0.5)
        view = spool.jobs()[jid]
        assert view.state == "done"
        assert view.elapsed == 0.5
        assert spool.result(jid) == {"cycles": [1, 2]}
        assert spool.result("unknown", default="x") == "x"

    def test_first_terminal_event_wins(self, spool):
        """A stale holder finishing after re-dispatch must not flip state."""
        jid = spool.submit(spec())
        spool.claim("w0", now=100.0)
        spool.claim("w1", now=111.0)  # w0's lease expired; re-dispatched
        spool.complete(jid, "w1", "fresh", elapsed=0.2)
        spool.fail(jid, "w0", "RuntimeError", "stale holder woke up", 9.0)
        view = spool.jobs()[jid]
        assert view.state == "done"
        assert view.error_type is None
        assert spool.result(jid) == "fresh"

    def test_fail_records_typed_error(self, spool):
        jid = spool.submit(spec())
        spool.claim("w0", now=100.0)
        spool.fail(jid, "w0", "JobDeadlineExceeded", "m" * 600, elapsed=1.0)
        view = spool.jobs()[jid]
        assert view.state == "failed"
        assert view.error_type == "JobDeadlineExceeded"
        assert len(view.message) == 500  # truncated for the log

    def test_resubmit_reopens_failed_job(self, spool):
        jid = spool.submit(spec())
        spool.claim("w0", now=100.0)
        spool.fail(jid, "w0", "TaskFailed", "boom", elapsed=1.0)
        assert spool.depth() == 0
        assert spool.submit(spec()) == jid
        assert spool.jobs()[jid].state == "pending"

    def test_resubmit_restarts_deadline_and_clock(self, spool):
        """A job that failed its deadline must not re-fail instantly: the
        resubmission's own time and deadline replace the originals."""
        jid = spool.submit(spec(), deadline_s=1e-6)
        first = spool.jobs()[jid]
        spool.claim("w0")
        spool.fail(jid, "w0", "JobDeadlineExceeded", "expired", elapsed=0.0)
        time.sleep(0.01)
        assert spool.submit(spec(), deadline_s=60.0) == jid
        view = spool.jobs()[jid]
        assert view.state == "pending"
        assert view.deadline_s == 60.0
        assert view.submitted_t > first.submitted_t


class TestDurability:
    def test_torn_tail_is_tolerated(self, spool):
        a = spool.submit(spec(start=0, stop=1))
        spool.submit(spec(start=1, stop=2))
        with open(spool.log_path, "a", encoding="utf-8") as fh:
            fh.write('{"ev": "subm')  # crash mid-append
        views = spool.jobs()
        assert set(views) >= {a}
        assert len(views) == 2

    def test_mid_file_corruption_is_an_error(self, spool):
        spool.submit(spec(start=0, stop=1))
        with open(spool.log_path, "a", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"ev": "submit", "id": "x",
                                 "spec": spec(start=1, stop=2).as_dict(),
                                 "t": 0.0, "deadline_s": None}) + "\n")
        with pytest.raises(ServiceError, match="corrupt spool log"):
            spool.jobs()

    def test_fold_survives_reopen(self, spool, tmp_path):
        jid = spool.submit(spec())
        spool.claim("w0", now=100.0)
        spool.complete(jid, "w0", 42, elapsed=0.1)
        reopened = JobSpool.open(tmp_path / "spool")
        assert reopened.jobs()[jid].state == "done"
        assert reopened.result(jid) == 42


class TestCoordination:
    def test_drain_flag_roundtrip(self, spool):
        assert not spool.drain_requested()
        spool.request_drain()
        spool.request_drain()  # idempotent
        assert spool.drain_requested()
        spool.clear_drain()
        assert not spool.drain_requested()

    def test_heartbeats_roundtrip(self, spool):
        spool.heartbeat("w0", job="abc")
        spool.heartbeat("w1")
        beats = spool.heartbeats()
        assert set(beats) == {"w0", "w1"}
        assert beats["w0"]["job"] == "abc"
        assert "pid" in beats["w0"] and "t" in beats["w0"]

    def test_checkpoint_paths_are_per_job(self, spool):
        a = spool.checkpoint_path("aaaa")
        b = spool.checkpoint_path("bbbb")
        assert a != b
        assert a.parent == b.parent

    def test_malformed_heartbeat_is_skipped_and_counted(self, spool):
        """Torn/garbage heartbeat files feed the shared malformed-lines
        ledger instead of being silently swallowed."""
        spool.heartbeat("w0")
        hb_dir = spool.root / "hb"
        (hb_dir / "torn.json").write_text('{"pid": 12')
        (hb_dir / "scalar.json").write_text('42\n')
        counter = default_registry().counter("obs.reader.malformed_lines")
        before = counter.value
        beats = spool.heartbeats()
        assert set(beats) == {"w0"}
        assert counter.value == before + 2


class TestDiskFaults:
    """The _append short-write resume loop and typed write degradation."""

    @pytest.fixture(autouse=True)
    def _clean_shim(self):
        yield
        diskchaos.uninstall()

    def test_short_write_is_resumed_not_torn(self, spool):
        with diskchaos.injected(DiskFaultInjector(short_write_at=(0,))) as inj:
            jid = spool.submit(spec())
        assert inj.fired == {"short_write": 1}
        assert inj.calls["write"] == 2  # prefix landed, remainder resumed
        lines = spool.log_path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["id"] == jid  # one intact record
        assert spool.jobs()[jid].state == "pending"

    def test_repeated_short_writes_still_drain(self, spool):
        # Every call is short until the tail is a single byte; the loop
        # must keep resuming until the record is fully on disk.
        with diskchaos.injected(DiskFaultInjector(p_short_write=1.0)):
            jid = spool.submit(spec())
        assert json.loads(spool.log_path.read_text())["id"] == jid

    def test_enospc_fails_typed_and_nothing_lands(self, spool):
        with diskchaos.injected(DiskFaultInjector(enospc_at=(0,))):
            with pytest.raises(ServiceError, match="append failed"):
                spool.submit(spec())
        assert spool.jobs() == {}
        jid = spool.submit(spec())  # disk healthy again
        assert spool.jobs()[jid].state == "pending"

    def test_enospc_mid_record_leaves_repairable_tear(self, spool):
        """Prefix lands, then the disk fills: the fragment must read as a
        torn tail and the next append must truncate it away."""
        counter = default_registry().counter("service.spool.torn_repaired")
        before = counter.value
        with diskchaos.injected(
                DiskFaultInjector(short_write_at=(0,), enospc_at=(1,))):
            with pytest.raises(ServiceError, match="append failed"):
                spool.submit(spec(start=0, stop=1))
        assert not spool.log_path.read_text().endswith("\n")  # torn
        assert spool.jobs() == {}  # tolerated on read
        other = spool.submit(spec(start=1, stop=2))  # repairs, then appends
        assert counter.value == before + 1
        views = spool.jobs()
        assert set(views) == {other}
        assert all(line.strip() for line in
                   spool.log_path.read_text().splitlines())

    def test_torn_crash_mid_append_recovers_on_reopen(self, spool, tmp_path):
        with diskchaos.injected(DiskFaultInjector(torn_crash_at=(0,))):
            with pytest.raises(SimulatedCrash):
                spool.submit(spec())
        survivor = JobSpool.open(tmp_path / "spool")
        assert survivor.jobs() == {}  # unacknowledged submit: not a job
        jid = survivor.submit(spec())
        assert survivor.jobs()[jid].state == "pending"

    def test_fsync_failure_is_a_failed_append(self, spool):
        with diskchaos.injected(DiskFaultInjector(eio_fsync_at=(0,))):
            with pytest.raises(ServiceError, match="append failed"):
                spool.submit(spec())

    def test_write_breaker_opens_read_only_mode(self, tmp_path):
        spool = JobSpool(
            tmp_path / "s",
            write_breaker=CircuitBreaker("spool-write:test",
                                         failure_threshold=3,
                                         reset_timeout=0.05))
        with diskchaos.injected(DiskFaultInjector(eio_write_at=(0, 1, 2))):
            for i in range(3):
                with pytest.raises(ServiceError, match="append failed"):
                    spool.submit(spec(start=i, stop=i + 1))
            # Breaker open: shed without touching the sick disk at all.
            with pytest.raises(CircuitOpenError, match="read-only mode"):
                spool.submit(spec(start=9, stop=10))
        assert isinstance(CircuitOpenError("x"), ServiceError)  # typed shed
        assert spool.jobs() == {}  # reads still work in read-only mode
        time.sleep(0.06)  # reset timeout: half-open probe admitted
        jid = spool.submit(spec(start=9, stop=10))
        assert spool.jobs()[jid].state == "pending"
        assert spool.write_breaker.state == "closed"

    def test_heartbeat_write_failure_is_counted_not_fatal(self, spool):
        counter = default_registry().counter(
            "service.heartbeat.write_failures")
        before = counter.value
        with diskchaos.injected(DiskFaultInjector(rename_at=(0,))):
            spool.heartbeat("w0")  # must not raise
        assert counter.value == before + 1
        assert spool.heartbeats() == {}
