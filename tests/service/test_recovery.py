"""Crash-recovery invariants: nothing computed twice, nothing lost."""

import json
import multiprocessing
import time

import numpy as np
import pytest

from repro.parallel import FaultInjector
from repro.service import (
    JobFailed,
    JobSpec,
    JobSpool,
    SpoolConfig,
    Worker,
    WorkerConfig,
    drain_queue,
    list_jobs,
    submit_job,
    wait_for,
    worker_main,
)
from repro.simulator import enumerate_design_space, get_profile, sweep_design_space

N_INSTR = 1_000_000
STOP = 12


def sweep_spec(app="gcc", stop=STOP):
    return JobSpec(kind="sweep", app=app, start=0, stop=stop,
                   n_instructions=N_INSTR)


def oracle(app="gcc", stop=STOP):
    configs = list(enumerate_design_space())[:stop]
    return sweep_design_space(configs, get_profile(app), n_instructions=N_INSTR)


@pytest.mark.slow
class TestSigkillRecovery:
    def test_journal_resume_after_sigkill_is_bit_identical(self, tmp_path):
        """Kill a worker mid-sweep; the successor resumes, not recomputes."""
        root = tmp_path / "s"
        spool = JobSpool.ensure(root, SpoolConfig(lease_ttl=0.5))
        jid = spool.submit(sweep_spec())
        cfg = WorkerConfig(root=str(root), name="doomed", heartbeat_every=1,
                           injector=FaultInjector(sigkill_indices=(5,)))
        p = multiprocessing.Process(target=worker_main, args=(cfg,))
        p.start()
        p.join(timeout=60)
        assert p.exitcode == -9  # the kernel tore it down mid-task

        journal_path = spool.checkpoint_path(jid)
        assert journal_path.exists()
        survivors = [json.loads(line) for line in
                     journal_path.read_text().splitlines()]
        assert 1 <= len(survivors) < STOP  # partial progress persisted

        while spool.jobs()[jid].state == "running":
            time.sleep(0.05)  # lease of the dead holder expires
        assert drain_queue(spool, worker="successor") == 1

        view = spool.jobs()[jid]
        assert view.state == "done"
        assert view.n_leases == 2
        assert view.n_expired == 1
        assert np.array_equal(np.asarray(spool.result(jid)["cycles"]),
                              oracle())
        # Resume skipped completed fingerprints: one record per config, none
        # re-executed into a duplicate journal line.
        records = [json.loads(line) for line in
                   journal_path.read_text().splitlines()]
        fingerprints = [r["fp"] for r in records]
        assert len(fingerprints) == STOP
        assert len(set(fingerprints)) == STOP
        assert fingerprints[:len(survivors)] == [r["fp"] for r in survivors]


class TestResultReuse:
    def test_orphaned_result_completes_without_reexecution(self, tmp_path):
        """Crash between results.put and the done event: reuse, don't redo."""
        root = tmp_path / "s"
        spool = JobSpool.ensure(root)
        jid = spool.submit(sweep_spec())
        marker = {"kind": "sweep", "cycles": [1.0, 2.0, 3.0]}
        spool.results.put(jid, marker)  # the dead holder got exactly this far
        assert spool.jobs()[jid].state == "pending"
        assert drain_queue(spool, worker="successor") == 1
        view = spool.jobs()[jid]
        assert view.state == "done"
        assert view.elapsed == 0.0  # completed, not recomputed
        assert spool.result(jid) == marker


class TestPoisonJob:
    def test_non_repro_exception_fails_job_not_worker(self, tmp_path):
        """An unexpected exception (here: KeyError from an unknown app) must
        be recorded as that job's failure, not crash the shard — a crashing
        shard would re-dispatch the poison job into every replacement until
        the whole service exhausted its restart budget."""
        spool = JobSpool.ensure(tmp_path / "s")
        bad = spool.submit(JobSpec(kind="sweep", app="nosuchapp",
                                   start=0, stop=2, n_instructions=N_INSTR))
        good = spool.submit(sweep_spec(stop=2))
        assert drain_queue(spool, worker="w0") == 2  # same worker did both
        views = spool.jobs()
        assert views[bad].state == "failed"
        assert views[bad].error_type == "KeyError"
        assert views[good].state == "done"


class TestLockConflict:
    def test_journal_lock_conflict_backs_off_without_failing(self, tmp_path):
        """A claim that races a still-live holder (lease lapsed, journal
        flock held) must back off, not record a permanent failure that
        masks the holder's eventual success."""
        from repro.util.locking import FileLock

        spool = JobSpool.ensure(tmp_path / "s", SpoolConfig(lease_ttl=0.2))
        jid = spool.submit(sweep_spec(stop=2))
        journal = spool.checkpoint_path(jid)
        journal.parent.mkdir(parents=True, exist_ok=True)
        holder = FileLock(journal.with_name(journal.name + ".lock"))
        assert holder.acquire(blocking=False)  # the "live" original holder
        try:
            w = Worker(WorkerConfig(root=str(tmp_path / "s"), name="w1"),
                       spool=spool)
            assert w.run_once() is False  # claimed, conflicted, backed off
            assert any(e.startswith("conflict:") for e in w.events)
            assert not any(e.startswith("fail:") for e in w.events)
            assert spool.jobs(now=1e12)[jid].state == "pending"  # no terminal
        finally:
            holder.release()
        # Once the holder is gone (finished or died), the job completes.
        while spool.jobs()[jid].state == "running":
            time.sleep(0.05)  # conflicting claim's lease expires
        assert drain_queue(spool, worker="w2") == 1
        assert spool.jobs()[jid].state == "done"


class TestSpoolShed:
    def test_claim_failure_sheds_instead_of_crashing(self, tmp_path):
        """A sick spool disk (append refused) must make the worker back
        off typed — not crash the shard, not wedge the loop."""
        from repro.robust import DiskFaultInjector, diskchaos

        spool = JobSpool.ensure(tmp_path / "s")
        jid = spool.submit(sweep_spec(stop=2))
        w = Worker(WorkerConfig(root=str(tmp_path / "s"), name="w1"),
                   spool=spool)
        with diskchaos.injected(DiskFaultInjector(eio_write_at=(0,))):
            assert w.run_once() is False  # lease append failed: shed
        assert "spool-shed:claim" in w.events
        assert spool.jobs()[jid].state == "pending"  # still claimable
        assert w.run_once() is True  # healthy disk again: job runs
        assert spool.jobs()[jid].state == "done"

    def test_checkpoint_append_failure_sheds_not_fails(self, tmp_path):
        """A journal append the disk refuses must not poison the job with a
        permanent CheckpointError failure: shed, expire, resume."""
        from repro.robust import DiskFaultInjector, diskchaos

        spool = JobSpool.ensure(tmp_path / "s", SpoolConfig(lease_ttl=0.1))
        jid = spool.submit(sweep_spec(stop=2))
        w = Worker(WorkerConfig(root=str(tmp_path / "s"), name="w1"),
                   spool=spool)
        # Let the claim land, then refuse every later append (renews are
        # best-effort; the first journal record raises CheckpointError).
        with diskchaos.injected(
                DiskFaultInjector(enospc_at=tuple(range(1, 64)))):
            assert w.run_once() is False
        assert f"spool-shed:{jid[:12]}" in w.events
        assert not any(e.startswith("fail:") for e in w.events)
        assert spool.jobs(now=1e12)[jid].state == "pending"  # no terminal
        time.sleep(0.11)  # the shed attempt's lease expires
        assert w.run_once() is True
        view = spool.jobs()[jid]
        assert view.state == "done"
        assert np.array_equal(np.asarray(spool.result(jid)["cycles"]),
                              oracle(stop=2))


class TestDeadlines:
    def test_expired_deadline_fails_typed(self, tmp_path):
        root = str(tmp_path / "s")
        jid = submit_job(root, sweep_spec(), deadline_s=1e-6)
        time.sleep(0.01)
        drain_queue(JobSpool.open(root))
        with pytest.raises(JobFailed) as exc_info:
            wait_for(root, jid, timeout=5.0)
        assert exc_info.value.error_type == "JobDeadlineExceeded"
        assert exc_info.value.exit_code == 14

    def test_resubmit_after_deadline_failure_runs_on_new_terms(self, tmp_path):
        """Resubmitting a deadline-failed job with a fresh deadline must
        actually run it — not re-fail against the long-expired original."""
        root = str(tmp_path / "s")
        jid = submit_job(root, sweep_spec(), deadline_s=1e-6)
        time.sleep(0.01)
        drain_queue(JobSpool.open(root))
        with pytest.raises(JobFailed):
            wait_for(root, jid, timeout=5.0)
        assert submit_job(root, sweep_spec(), deadline_s=3600.0) == jid
        drain_queue(JobSpool.open(root))
        assert wait_for(root, jid, timeout=5.0).state == "done"

    def test_generous_deadline_is_harmless(self, tmp_path):
        root = str(tmp_path / "s")
        jid = submit_job(root, sweep_spec(), deadline_s=3600.0)
        drain_queue(JobSpool.open(root))
        view = wait_for(root, jid, timeout=5.0)
        assert view.state == "done"
        assert np.array_equal(np.asarray(JobSpool.open(root).result(jid)["cycles"]),
                              oracle())


class TestClient:
    def test_wait_for_unknown_job_raises(self, tmp_path):
        root = str(tmp_path / "s")
        JobSpool.ensure(root)
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="unknown job"):
            wait_for(root, "deadbeef", timeout=1.0)

    def test_wait_for_times_out_instead_of_hanging(self, tmp_path):
        root = str(tmp_path / "s")
        jid = submit_job(root, sweep_spec())  # no worker will ever run it
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="timed out"):
            wait_for(root, jid, timeout=0.2)

    def test_list_jobs_is_submit_ordered(self, tmp_path):
        root = str(tmp_path / "s")
        first = submit_job(root, sweep_spec("gcc"))
        second = submit_job(root, sweep_spec("mcf"))
        assert [v.id for v in list_jobs(root)] == [first, second]
