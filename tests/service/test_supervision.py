"""Tests for worker supervision: restart backoff, chaos drills, drain."""

import time

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.parallel import FaultInjector
from repro.service import (
    JobSpec,
    JobSpool,
    ServiceConfig,
    WorkerSupervisor,
    drain_queue,
    submit_job,
)
from repro.simulator import enumerate_design_space, get_profile, sweep_design_space

N_INSTR = 1_000_000
STOP = 12


def sweep_spec(app="gcc", stop=STOP):
    return JobSpec(kind="sweep", app=app, start=0, stop=stop,
                   n_instructions=N_INSTR)


def oracle(app="gcc", stop=STOP):
    configs = list(enumerate_design_space())[:stop]
    return sweep_design_space(configs, get_profile(app), n_instructions=N_INSTR)


class TestSlotPolicy:
    """Supervision decisions tested without spawning any processes."""

    def _sup(self, tmp_path, **kw):
        kw.setdefault("workers", 1)
        kw.setdefault("max_restarts", 2)
        return WorkerSupervisor(ServiceConfig(root=str(tmp_path / "s"), **kw))

    def test_restart_delay_is_deterministic_and_capped(self, tmp_path):
        sup = self._sup(tmp_path, restart_backoff_base=0.1,
                        restart_backoff_max=1.0, seed=5)
        slot = sup.slots[0]
        slot.restarts = 1
        assert sup._restart_delay(slot) == sup._restart_delay(slot)
        first = sup._restart_delay(slot)
        slot.restarts = 50
        assert sup._restart_delay(slot) <= 1.0 * 1.5  # capped + max jitter
        slot.restarts = 1
        assert sup._restart_delay(slot) == first  # keyed by (seed, slot, n)

    def test_dead_worker_schedules_backed_off_restart(self, tmp_path):
        sup = self._sup(tmp_path)
        slot = sup.slots[0]
        before = time.time()
        sup._handle_dead(slot, "code=-9")
        assert slot.restarts == 1
        assert not slot.abandoned
        assert slot.not_before > before
        assert any(e.startswith("restart:w0") for e in sup.events)

    def test_abandon_after_restart_budget(self, tmp_path):
        sup = self._sup(tmp_path, max_restarts=2)
        slot = sup.slots[0]
        for _ in range(3):
            sup._handle_dead(slot, "code=-9")
        assert slot.abandoned
        assert "abandon:w0" in sup.events

    def test_no_restart_while_draining(self, tmp_path):
        sup = self._sup(tmp_path)
        sup.spool.request_drain()
        slot = sup.slots[0]
        sup._handle_dead(slot, "code=0")
        assert slot.restarts == 0
        assert slot.retired
        assert not any(e.startswith("restart:") for e in sup.events)

    def test_retired_slot_is_never_respawned(self, tmp_path):
        """A drained worker must stay down — poll() once resurrected them,
        which kept the serve loop spinning spawn/exit cycles forever."""
        sup = self._sup(tmp_path)
        sup.spool.request_drain()
        sup._handle_dead(sup.slots[0], "code=0")
        sup.poll()
        assert sup.slots[0].process is None
        assert not any(e.startswith("spawn:") for e in sup.events)

    def test_all_abandoned_with_empty_queue_exits_cleanly(
            self, tmp_path, monkeypatch):
        """No queued work + no workers is a finished service, not a failed
        one — run() must drain and exit 0 instead of raising."""
        sup = self._sup(tmp_path)
        for slot in sup.slots:
            slot.abandoned = True
        monkeypatch.setattr(sup, "start", lambda: None)
        monkeypatch.setattr(sup, "poll", lambda: None)
        assert sup.run() == 0
        assert "drain-requested:all-slots-abandoned" in sup.events

    def test_all_abandoned_with_queued_work_raises(self, tmp_path, monkeypatch):
        sup = self._sup(tmp_path)
        sup.spool.submit(sweep_spec())
        for slot in sup.slots:
            slot.abandoned = True
        monkeypatch.setattr(sup, "start", lambda: None)
        monkeypatch.setattr(sup, "poll", lambda: None)
        with pytest.raises(ServiceError, match="restart budget"):
            sup.run()

    def test_run_restores_displaced_signal_handlers(self, tmp_path):
        import signal

        before = signal.getsignal(signal.SIGTERM)
        sup = WorkerSupervisor(ServiceConfig(
            root=str(tmp_path / "s"), workers=1, drain_on_idle=True,
            max_runtime=30.0))
        assert sup.run() == 0
        assert signal.getsignal(signal.SIGTERM) is before

    def test_negative_idle_grace_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="idle_grace"):
            ServiceConfig(root=str(tmp_path / "s"), idle_grace=-1.0)

    def test_chaos_injector_reaches_first_generation_only(self, tmp_path):
        injector = FaultInjector(sigkill_indices=(3,))
        sup = self._sup(tmp_path, injector=injector)
        slot = sup.slots[0]
        slot.generation = 1
        assert sup._worker_config(slot).injector is injector
        slot.generation = 2
        assert sup._worker_config(slot).injector is None

    def test_worker_seeds_differ_per_slot(self, tmp_path):
        sup = self._sup(tmp_path, workers=2)
        cfgs = [sup._worker_config(s) for s in sup.slots]
        assert cfgs[0].seed != cfgs[1].seed
        assert cfgs[0].name == "w0" and cfgs[1].name == "w1"

    def test_cache_policy_reaches_every_worker_config(self, tmp_path):
        sup = WorkerSupervisor(ServiceConfig(
            root=str(tmp_path / "s"), workers=2, cache_policy="arc"))
        assert all(sup._worker_config(s).cache_policy == "arc"
                   for s in sup.slots)
        default = WorkerSupervisor(ServiceConfig(root=str(tmp_path / "d")))
        assert default._worker_config(default.slots[0]).cache_policy is None


@pytest.mark.slow
class TestAutoCompaction:
    """The supervision loop's compaction hook, no processes spawned."""

    def _sup(self, tmp_path, **kw):
        kw.setdefault("workers", 1)
        return WorkerSupervisor(ServiceConfig(root=str(tmp_path / "s"), **kw))

    def test_below_threshold_is_a_noop(self, tmp_path):
        sup = self._sup(tmp_path)  # default 4 MiB / 4096 events
        sup.spool.submit(sweep_spec())
        sup.maybe_compact()
        assert not any(e.startswith("compacted:") for e in sup.events)
        assert not sup.spool.snapshot_path.exists()

    def test_past_threshold_compacts_and_reports(self, tmp_path):
        sup = self._sup(tmp_path, compact_max_log_bytes=1)
        sup.spool.submit(sweep_spec())
        sup.maybe_compact()
        assert any(e.startswith("compacted:g1:") for e in sup.events)
        assert sup.spool.snapshot_path.exists()
        status = sup.status_snapshot()
        assert status["compaction"]["generation"] == 1

    def test_compaction_failure_degrades_not_dies(self, tmp_path):
        sup = self._sup(tmp_path, compact_max_log_bytes=1)
        sup.spool.submit(sweep_spec())
        sup.spool.snapshot_path.write_text("not json")  # unreadable snapshot
        sup.maybe_compact()  # must not raise
        assert any(e.startswith("compact-failed:") for e in sup.events)

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="compact_max_log_bytes"):
            ServiceConfig(root=str(tmp_path / "s"), compact_max_log_bytes=0)
        with pytest.raises(ValueError, match="compact_check_interval"):
            ServiceConfig(root=str(tmp_path / "s"), compact_check_interval=0)


class TestSupervisedService:
    """End-to-end drills with real worker processes."""

    def test_clean_run_drains_on_idle(self, tmp_path):
        root = str(tmp_path / "s")
        sup = WorkerSupervisor(ServiceConfig(
            root=root, workers=2, drain_on_idle=True, max_runtime=60.0))
        jid = submit_job(root, sweep_spec())
        assert sup.run() == 0
        view = sup.spool.jobs()[jid]
        assert view.state == "done"
        result = sup.spool.result(jid)
        assert np.array_equal(np.asarray(result["cycles"]), oracle())

    def test_sigkilled_worker_is_restarted_and_job_redispatched(self, tmp_path):
        """The ISSUE acceptance drill: kill a worker mid-sweep, lose nothing."""
        root = str(tmp_path / "s")
        sup = WorkerSupervisor(ServiceConfig(
            root=root, workers=2, lease_ttl=2.0, heartbeat_timeout=10.0,
            drain_on_idle=True, max_runtime=90.0, seed=3,
            injector=FaultInjector(sigkill_indices=(5,))))
        jids = [submit_job(root, sweep_spec(app)) for app in ("gcc", "mcf")]
        assert sup.run() == 0
        assert any("code=-9" in e for e in sup.events), sup.events
        assert any(e.startswith("restart:") for e in sup.events)
        views = sup.spool.jobs()
        assert all(views[j].state == "done" for j in jids)
        # Bit-identity against the serial oracle, straight through the
        # kill/restart/re-dispatch path.
        for jid, app in zip(jids, ("gcc", "mcf")):
            got = np.asarray(sup.spool.result(jid)["cycles"])
            assert np.array_equal(got, oracle(app))

    def test_idle_grace_lets_a_late_first_submit_land(self, tmp_path):
        """The quickstart race: ``serve --drain-on-idle &`` then ``submit``.
        Without an idle grace the server drained an initially-empty queue
        instantly and exited before the first job arrived."""
        import threading

        root = str(tmp_path / "s")
        sup = WorkerSupervisor(ServiceConfig(
            root=root, workers=1, drain_on_idle=True, idle_grace=5.0,
            max_runtime=60.0))
        rc: list[int] = []
        t = threading.Thread(target=lambda: rc.append(sup.run()))
        t.start()
        time.sleep(1.0)  # well inside the grace window, queue still empty
        jid = submit_job(root, sweep_spec())
        t.join(timeout=60.0)
        assert not t.is_alive() and rc == [0]
        assert sup.spool.jobs()[jid].state == "done"

    def test_stop_terminates_stragglers(self, tmp_path):
        root = str(tmp_path / "s")
        sup = WorkerSupervisor(ServiceConfig(root=root, workers=1))
        sup.start()
        assert sup.alive() == 1
        sup.stop(grace=5.0)
        assert sup.alive() == 0
        assert sup.spool.drain_requested()


class TestDrainQueue:
    def test_inline_drain_executes_everything(self, tmp_path):
        root = str(tmp_path / "s")
        spool = JobSpool.ensure(root)
        a = spool.submit(sweep_spec("gcc"))
        b = spool.submit(sweep_spec("mcf"))
        assert drain_queue(spool) == 2
        views = spool.jobs()
        assert views[a].state == "done" and views[b].state == "done"
        assert np.array_equal(np.asarray(spool.result(a)["cycles"]), oracle())
