"""Service observability plane: trace correlation, shard metrics, status."""

import io
import json
import os

import pytest

from repro.cli import main
from repro.obs import trace as _trace
from repro.obs.aggregate import merge_timeline, read_shard_metrics
from repro.obs.metrics import default_registry, reset_default_registry
from repro.obs.trace import validate_record
from repro.parallel import FaultInjector
from repro.service import (
    JobSpec,
    JobSpool,
    ServiceConfig,
    Worker,
    WorkerConfig,
    WorkerSupervisor,
    drain_queue,
    submit_job,
)
from repro.service.supervisor import STATUS_SCHEMA

N_INSTR = 1_000_000


def sweep_spec(app="gcc", stop=4):
    return JobSpec(kind="sweep", app=app, start=0, stop=stop,
                   n_instructions=N_INSTR)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """These tests touch the process-global tracer/registry; isolate them."""
    _trace.shutdown()
    reset_default_registry()
    yield
    _trace.shutdown()
    reset_default_registry()


class TestTraceIdStamping:
    def test_submit_stamps_trace_id_equal_to_job_id(self, tmp_path):
        spool = JobSpool.ensure(tmp_path / "s")
        jid = spool.submit(sweep_spec())
        view = spool.jobs()[jid]
        assert view.trace_id == jid
        submit_ev = json.loads(spool.log_path.read_text().splitlines()[0])
        assert submit_ev["ev"] == "submit"
        assert submit_ev["trace_id"] == jid

    def test_claim_returns_view_carrying_trace_id(self, tmp_path):
        spool = JobSpool.ensure(tmp_path / "s")
        jid = spool.submit(sweep_spec())
        job = spool.claim("w0")
        assert job is not None and job.trace_id == jid

    def test_queue_events_carry_wall_clock(self, tmp_path):
        spool = JobSpool.ensure(tmp_path / "s")
        jid = spool.submit(sweep_spec())
        spool.claim("w0")
        spool.renew(jid, "w0")
        spool.fail(jid, "w0", "Boom", "msg", 0.1)
        spool.submit(sweep_spec())  # resubmit of the failed job
        spool.claim("w0")
        spool.complete(jid, "w0", {"ok": 1}, 0.1)
        for ev in map(json.loads, spool.log_path.read_text().splitlines()):
            assert ev["t"] > 0, ev


class TestWorkerTracing:
    def test_worker_spans_adopt_the_jobs_trace_id(self, tmp_path):
        buf = io.StringIO()
        _trace.configure(stream=buf)
        spool = JobSpool.ensure(tmp_path / "s")
        jid = spool.submit(sweep_spec())
        assert drain_queue(spool) == 1
        records = [json.loads(x) for x in buf.getvalue().splitlines()]
        claims = [r for r in records if r["name"] == "job.claim"]
        executes = [r for r in records if r["name"] == "job.execute"]
        assert len(claims) == 1 and len(executes) == 1
        assert claims[0]["trace_id"] == jid
        assert executes[0]["trace_id"] == jid
        assert executes[0]["kind"] == "span"
        assert executes[0]["attrs"]["job_kind"] == "sweep"
        # inner executor spans inherit the context too — the whole attempt
        # hangs off one trace id
        assert {r["trace_id"] for r in records} == {jid}

    def test_cached_result_completion_is_annotated(self, tmp_path):
        buf = io.StringIO()
        _trace.configure(stream=buf)
        spool = JobSpool.ensure(tmp_path / "s")
        jid = spool.submit(sweep_spec())
        # a previous holder stored the result but died before `done` landed
        spool.results.put(jid, {"kind": "sweep", "cycles": [1.0]})
        assert drain_queue(spool) == 1
        records = [json.loads(x) for x in buf.getvalue().splitlines()]
        reused = [r for r in records if r["name"] == "job.result-reused"]
        assert len(reused) == 1 and reused[0]["trace_id"] == jid
        assert not [r for r in records if r["name"] == "job.execute"]

    def test_obs_worker_writes_per_shard_trace_file(self, tmp_path):
        spool = JobSpool.ensure(tmp_path / "s")
        jid = spool.submit(sweep_spec())
        cfg = WorkerConfig(root=str(spool.root), name="w7", obs=True,
                           max_jobs=1)
        assert Worker(cfg, spool=spool).run() == 1
        path = spool.root / "obs" / "trace.w7.jsonl"
        records = [json.loads(x) for x in path.read_text().splitlines()]
        for rec in records:
            validate_record(rec)
        assert {r["trace_id"] for r in records
                if r["name"] == "job.execute"} == {jid}
        # exit also leaves a final metrics snapshot
        doc = json.loads((spool.root / "metrics" / "w7.json").read_text())
        assert doc["final"] is True

    def test_untraced_worker_writes_no_trace_file(self, tmp_path):
        spool = JobSpool.ensure(tmp_path / "s")
        spool.submit(sweep_spec())
        cfg = WorkerConfig(root=str(spool.root), name="w0", max_jobs=1)
        assert Worker(cfg, spool=spool).run() == 1
        assert not (spool.root / "obs").exists()


class TestHeartbeatTelemetry:
    def test_heartbeat_carries_breaker_states(self, tmp_path):
        spool = JobSpool.ensure(tmp_path / "s")
        w = Worker(WorkerConfig(root=str(spool.root), name="w0"), spool=spool)
        w.heartbeat(job="j1")
        hb = spool.heartbeats()["w0"]
        assert hb["job"] == "j1"
        assert hb["breakers"] == {"model-fit": "closed",
                                  "disk-cache": "closed"}

    def test_heartbeat_flushes_metrics_after_interval(self, tmp_path):
        spool = JobSpool.ensure(tmp_path / "s")
        w = Worker(WorkerConfig(root=str(spool.root), name="w0",
                                metrics_flush_s=0.0), spool=spool)
        default_registry().counter("service.jobs.completed").inc(3)
        w.heartbeat()
        doc = json.loads((spool.root / "metrics" / "w0.json").read_text())
        assert doc["schema"] == "repro-shardmetrics/1"
        assert doc["shard"] == "w0"
        assert doc["pid"] == os.getpid()
        assert doc["final"] is False
        assert doc["metrics"]["service.jobs.completed"]["value"] == 3

    def test_flush_interval_bounds_write_frequency(self, tmp_path):
        spool = JobSpool.ensure(tmp_path / "s")
        w = Worker(WorkerConfig(root=str(spool.root), name="w0",
                                metrics_flush_s=3600.0), spool=spool)
        w.heartbeat()
        assert not (spool.root / "metrics" / "w0.json").exists()

    def test_final_export_marks_snapshot_final(self, tmp_path):
        spool = JobSpool.ensure(tmp_path / "s")
        w = Worker(WorkerConfig(root=str(spool.root), name="w0"), spool=spool)
        w._export_metrics(final=True)
        doc = json.loads((spool.root / "metrics" / "w0.json").read_text())
        assert doc["final"] is True


class TestMetricsSalvage:
    def test_dead_workers_snapshot_renamed_per_generation(self, tmp_path):
        sup = WorkerSupervisor(ServiceConfig(root=str(tmp_path / "s"),
                                             workers=1))
        slot = sup.slots[0]
        slot.generation = 1
        mdir = sup.spool.root / "metrics"
        mdir.mkdir()
        (mdir / "w0.json").write_text('{"t": 1.0}')
        sup._handle_dead(slot, "code=-9")
        assert not (mdir / "w0.json").exists()
        assert (mdir / "w0.g1.json").read_text() == '{"t": 1.0}'
        assert "salvage-metrics:w0:g1" in sup.events

    def test_clean_drain_retirement_keeps_live_snapshot_name(self, tmp_path):
        """A retired slot is never respawned, so its final self-written
        snapshot must stay at metrics/<name>.json — salvage-renaming it
        made freshly-drained services look like they had broken flushes."""
        sup = WorkerSupervisor(ServiceConfig(root=str(tmp_path / "s"),
                                             workers=1))
        sup.spool.request_drain()
        mdir = sup.spool.root / "metrics"
        mdir.mkdir()
        (mdir / "w0.json").write_text('{"t": 1.0}')
        sup._handle_dead(sup.slots[0], "code=0")
        assert (mdir / "w0.json").exists()
        assert not any(e.startswith("salvage-metrics") for e in sup.events)

    def test_salvage_without_snapshot_is_a_noop(self, tmp_path):
        sup = WorkerSupervisor(ServiceConfig(root=str(tmp_path / "s"),
                                             workers=1))
        sup._salvage_metrics(sup.slots[0])
        assert not any(e.startswith("salvage-metrics") for e in sup.events)


class TestStatusFile:
    def test_snapshot_shape_without_processes(self, tmp_path):
        sup = WorkerSupervisor(ServiceConfig(root=str(tmp_path / "s"),
                                             workers=2))
        submit_job(str(tmp_path / "s"), sweep_spec())
        snap = sup.status_snapshot()
        assert snap["schema"] == STATUS_SCHEMA
        assert [w["name"] for w in snap["workers"]] == ["w0", "w1"]
        assert all(not w["alive"] for w in snap["workers"])
        assert snap["queue"]["pending"] == 1
        assert snap["queue"]["depth"] == 1
        assert snap["draining"] is False
        assert "slo" in snap
        json.dumps(snap, default=str)  # must serialize

    def test_write_status_is_noop_without_target(self, tmp_path):
        sup = WorkerSupervisor(ServiceConfig(root=str(tmp_path / "s"),
                                             workers=1))
        sup.write_status()  # must not raise, must create nothing
        assert list(tmp_path.glob("*.json")) == []

    def test_write_status_creates_valid_document(self, tmp_path):
        target = tmp_path / "monitor" / "status.json"
        sup = WorkerSupervisor(ServiceConfig(
            root=str(tmp_path / "s"), workers=1, status_file=str(target)))
        sup.write_status()
        doc = json.loads(target.read_text())
        assert doc["schema"] == STATUS_SCHEMA
        assert not list(target.parent.glob(".*.tmp"))  # replaced atomically

    def test_obs_flag_reaches_worker_configs(self, tmp_path):
        sup = WorkerSupervisor(ServiceConfig(root=str(tmp_path / "s"),
                                             workers=2, obs=True))
        assert all(sup._worker_config(s).obs for s in sup.slots)
        off = WorkerSupervisor(ServiceConfig(root=str(tmp_path / "d")))
        assert not off._worker_config(off.slots[0]).obs

    def test_status_interval_validated(self, tmp_path):
        with pytest.raises(ValueError, match="status_interval"):
            ServiceConfig(root=str(tmp_path / "s"), status_interval=0.0)


class TestObsCli:
    def _spool_with_telemetry(self, tmp_path):
        root = tmp_path / "s"
        obs = root / "obs"
        obs.mkdir(parents=True)
        with open(root / "spool.jsonl", "w") as fh:
            fh.write(json.dumps({"ev": "submit", "id": "j1", "t": 100.0,
                                 "trace_id": "j1",
                                 "spec": {"kind": "sweep"}}) + "\n")
            fh.write(json.dumps({"ev": "lease", "id": "j1", "t": 101.0,
                                 "worker": "w0"}) + "\n")
            fh.write(json.dumps({"ev": "done", "id": "j1", "t": 105.0,
                                 "worker": "w0"}) + "\n")
        (obs / "trace.w0.jsonl").write_text(json.dumps({
            "schema": "repro-trace/1", "kind": "span", "span_id": 1,
            "parent_id": None, "name": "job.execute", "t_wall": 101.5,
            "t_start": 0.0, "duration_s": 3.0, "status": "ok",
            "error": None, "trace_id": "j1", "attrs": {}}) + "\n")
        return root

    def test_aggregate_writes_timeline_and_metrics(self, tmp_path, capsys):
        root = self._spool_with_telemetry(tmp_path)
        mdir = root / "metrics"
        mdir.mkdir()
        (mdir / "w0.json").write_text(json.dumps({
            "schema": "repro-shardmetrics/1", "shard": "w0", "pid": 1,
            "t": 105.0, "final": True,
            "metrics": {"c": {"type": "counter", "value": 2}}}))
        out = tmp_path / "timeline.jsonl"
        magg = tmp_path / "agg.json"
        assert main(["obs", "aggregate", "--spool", str(root),
                     "--out", str(out), "--metrics-out", str(magg)]) == 0
        stdout = capsys.readouterr().out
        assert "4 records" in stdout
        lines = [json.loads(x) for x in out.read_text().splitlines()]
        assert [r["name"] for r in lines] == [
            "spool.submit", "spool.lease", "job.execute", "spool.done"]
        agg = json.loads(magg.read_text())
        assert agg["metrics"]["c"]["value"] == 2

    def test_report_prints_all_four_slo_metrics(self, tmp_path, capsys):
        root = self._spool_with_telemetry(tmp_path)
        assert main(["obs", "report", "--spool", str(root)]) == 0
        out = capsys.readouterr().out
        for metric in ("queue_wait", "lease_to_start", "execute", "e2e"):
            assert metric in out

    def test_missing_spool_is_a_typed_error(self, tmp_path, capsys):
        assert main(["obs", "report",
                     "--spool", str(tmp_path / "nope")]) != 0
        assert "no spool directory" in capsys.readouterr().err


@pytest.mark.slow
class TestObservedChaosDrill:
    """The acceptance drill: SIGKILL a shard mid-job with the plane on."""

    def test_resumed_job_spans_share_original_trace_id(self, tmp_path):
        root = str(tmp_path / "s")
        sup = WorkerSupervisor(ServiceConfig(
            root=root, workers=2, lease_ttl=2.0, heartbeat_timeout=10.0,
            drain_on_idle=True, max_runtime=90.0, seed=3, obs=True,
            injector=FaultInjector(sigkill_indices=(5,))))
        jids = [submit_job(root, sweep_spec(app, stop=12))
                for app in ("gcc", "mcf")]
        assert sup.run() == 0
        assert any("code=-9" in e for e in sup.events), sup.events
        views = sup.spool.jobs()
        assert all(views[j].state == "done" for j in jids)
        killed = [j for j in jids if views[j].n_expired > 0]
        assert killed, "the drill never exercised re-dispatch"

        timeline = merge_timeline(root)
        # every merged record validates against repro-trace/1
        for rec in timeline.records:
            validate_record(rec)
        for jid in jids:
            mine = timeline.for_trace(jid)
            names = {r["name"] for r in mine}
            assert {"spool.submit", "spool.lease", "job.execute",
                    "spool.done"} <= names, (jid, sorted(names))
        for jid in killed:
            # one claim per attempt, killed and resumed alike, all under
            # the trace id minted at submission (the killed attempt's
            # execute span is inherently lost — it never finished)
            claims = [r for r in timeline.for_trace(jid)
                      if r["name"] == "job.claim"]
            assert len(claims) >= 2, claims
        # worker spans never invent trace ids of their own
        assert {r["trace_id"] for r in timeline.records
                if r["name"] == "job.execute"} <= set(jids)
        # shard metrics survived the kills (live flush or salvage)
        snapshots, unreadable = read_shard_metrics(root)
        assert snapshots and unreadable == 0
