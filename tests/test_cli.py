"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_args(self):
        args = build_parser().parse_args(["sweep", "mcf"])
        assert args.command == "sweep" and args.app == "mcf"

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "quake3"])

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sampled-dse", "gcc", "--models", "GBM"])

    def test_chronological_defaults(self):
        args = build_parser().parse_args(["chronological", "xeon"])
        assert args.train_year == 2005 and args.test_year == 2006
        assert len(args.models) == 9


class TestCommands:
    def test_sweep_runs(self, capsys):
        assert main(["sweep", "applu"]) == 0
        out = capsys.readouterr().out
        assert "4608 configurations" in out
        assert "range" in out

    def test_sampled_dse_runs(self, capsys):
        rc = main(["sampled-dse", "applu", "--rates", "0.01",
                   "--models", "LR-B", "--cv-reps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Model Error - applu" in out
        assert "LR-B" in out

    def test_chronological_runs(self, capsys):
        rc = main(["chronological", "pentium-d", "--models", "LR-E", "LR-B"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Chronological Predictions - pentium-d" in out
        assert "best:" in out

    def test_chronological_app_target(self, capsys):
        rc = main(["chronological", "opteron", "--models", "LR-B",
                   "--target", "app:181.mcf"])
        assert rc == 0
        assert "best:" in capsys.readouterr().out

    def test_importance_runs(self, capsys):
        assert main(["importance", "opteron", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "standardized beta" in out
        assert "sensitivity importance" in out
