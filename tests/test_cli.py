"""Tests for the command-line interface."""

import time

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_args(self):
        args = build_parser().parse_args(["sweep", "mcf"])
        assert args.command == "sweep" and args.app == "mcf"

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "quake3"])

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sampled-dse", "gcc", "--models", "GBM"])

    def test_chronological_defaults(self):
        args = build_parser().parse_args(["chronological", "xeon"])
        assert args.train_year == 2005 and args.test_year == 2006
        assert len(args.models) == 9

    def test_resilience_flags(self):
        args = build_parser().parse_args(
            ["sweep", "mcf", "--parallel", "--retries", "2",
             "--task-timeout", "30", "--checkpoint", "j.jsonl", "--resume"])
        assert args.parallel and args.retries == 2
        assert args.task_timeout == 30.0
        assert args.checkpoint == "j.jsonl" and args.resume

    def test_resilience_defaults_off(self):
        args = build_parser().parse_args(["sampled-dse", "gcc"])
        assert not args.parallel and args.retries == 0
        assert args.task_timeout is None and args.checkpoint is None

    def test_resume_requires_checkpoint(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["sweep", "mcf", "--resume"])
        assert ei.value.code == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_negative_retries_rejected(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["sweep", "mcf", "--retries", "-1", "--chaos", "exc=0.0"])
        assert ei.value.code == 2
        assert "--retries must be >= 0" in capsys.readouterr().err


class TestCommands:
    def test_sweep_runs(self, capsys):
        assert main(["sweep", "applu"]) == 0
        out = capsys.readouterr().out
        assert "4608 configurations" in out
        assert "range" in out

    def test_sampled_dse_runs(self, capsys):
        rc = main(["sampled-dse", "applu", "--rates", "0.01",
                   "--models", "LR-B", "--cv-reps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Model Error - applu" in out
        assert "LR-B" in out

    def test_chronological_runs(self, capsys):
        rc = main(["chronological", "pentium-d", "--models", "LR-E", "LR-B"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Chronological Predictions - pentium-d" in out
        assert "best:" in out

    def test_chronological_app_target(self, capsys):
        rc = main(["chronological", "opteron", "--models", "LR-B",
                   "--target", "app:181.mcf"])
        assert rc == 0
        assert "best:" in capsys.readouterr().out

    def test_importance_runs(self, capsys):
        assert main(["importance", "opteron", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "standardized beta" in out
        assert "sensitivity importance" in out


class TestCacheCLI:
    """--cache-policy / --cache-trace flags and the cache stats view."""

    @pytest.fixture(autouse=True)
    def _fresh_default_cache(self):
        from repro.cache import reset_default_cache, shutdown_capture

        yield
        shutdown_capture()
        reset_default_cache()

    def test_cache_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "mcf", "--cache-policy", "arc",
             "--cache-trace", "t.jsonl"])
        assert args.cache_policy == "arc" and args.cache_trace == "t.jsonl"

    def test_unknown_cache_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "mcf", "--cache-policy", "fifo"])

    def test_serve_parser_accepts_cache_policy(self):
        args = build_parser().parse_args(
            ["serve", "--spool", "s", "--cache-policy", "2q"])
        assert args.cache_policy == "2q"
        assert build_parser().parse_args(
            ["serve", "--spool", "s"]).cache_policy is None

    def test_cache_stats_reports_policy(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_POLICY", "lfu")
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "policy" in out and "lfu" in out

    def test_sweep_with_policy_selects_default_cache(self, capsys):
        from repro.cache import default_cache

        assert main(["sweep", "applu", "--cache-policy", "lfu"]) == 0
        assert default_cache().policy == "lfu"
        assert "4608 configurations" in capsys.readouterr().out

    def test_sweep_cache_trace_writes_capture(self, tmp_path, capsys):
        from repro.cache import read_cache_trace

        trace = tmp_path / "trace.jsonl"
        assert main(["sweep", "applu", "--cache-trace", str(trace)]) == 0
        records = list(read_cache_trace(trace))
        assert records and all(r["kind"] == "sweep-cycles" for r in records)
        err = capsys.readouterr().err
        assert "cache trace" in err and str(trace) in err

    def test_stats_shows_namespace_breakdown_after_probes(self, capsys):
        from repro.cache import default_cache

        default_cache().get_or_compute(("k",), lambda: 1)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "per-namespace probes" in out
        assert "(default) hits/misses" in out


class TestFaultTolerance:
    """The resilience flags and the exit-code / stderr contract."""

    def test_sweep_with_checkpoint_writes_journal(self, tmp_path, capsys):
        path = tmp_path / "sweep.jsonl"
        rc = main(["sweep", "applu", "--checkpoint", str(path)])
        assert rc == 0
        assert path.exists() and path.stat().st_size > 0
        assert "4608 configurations" in capsys.readouterr().out

    def test_sweep_resume_reuses_journal(self, tmp_path, capsys):
        path = tmp_path / "sweep.jsonl"
        assert main(["sweep", "applu", "--checkpoint", str(path)]) == 0
        first = capsys.readouterr().out
        size = path.stat().st_size
        assert main(["sweep", "applu", "--checkpoint", str(path), "--resume"]) == 0
        assert capsys.readouterr().out == first  # identical report
        assert path.stat().st_size == size       # nothing re-journaled

    def test_service_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--spool", "s"])
        assert args.workers == 2 and args.max_depth == 64
        assert args.lease_ttl == 30.0 and args.heartbeat_timeout == 10.0
        assert not args.drain_on_idle and args.max_runtime is None
        assert args.idle_grace == 3.0  # quickstart: serve &, then submit
        assert args.chaos_sigkill_at is None  # hidden chaos knobs parse

    def test_serve_requires_spool(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_submit_parser(self):
        args = build_parser().parse_args(
            ["submit", "--spool", "s", "sweep", "gcc", "--stop", "8",
             "--deadline", "5", "--wait"])
        assert args.kind == "sweep" and args.app == "gcc"
        assert args.stop == 8 and args.deadline == 5.0 and args.wait
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--spool", "s", "retrain", "gcc"])

    def test_chaos_abort_maps_to_exit_code_and_one_line_stderr(self, capsys):
        from repro.errors import SweepAborted

        rc = main(["sweep", "applu", "--chaos", "exc=1.0"])
        assert rc == SweepAborted.exit_code
        err = capsys.readouterr().err
        assert err.startswith("repro: error: sweep aborted")
        assert len(err.strip().splitlines()) == 1  # no traceback
        assert "Traceback" not in err

    def test_chaos_survived_with_retries(self, capsys):
        # Deterministic (seeded) chaos: transient faults clear on retry.
        rc = main(["sampled-dse", "applu", "--rates", "0.01",
                   "--models", "LR-B", "--cv-reps", "2",
                   "--chaos", "exc=0.3", "--retries", "5"])
        assert rc == 0
        assert "Model Error - applu" in capsys.readouterr().out

    def test_chaos_output_matches_fault_free_run(self, capsys):
        argv = ["sampled-dse", "applu", "--rates", "0.01",
                "--models", "LR-B", "--cv-reps", "2"]
        assert main(argv) == 0
        clean = capsys.readouterr().out
        assert main(argv + ["--chaos", "exc=0.3", "--retries", "5"]) == 0
        assert capsys.readouterr().out == clean  # faults never change numbers

    def test_bad_chaos_spec_is_clean_error(self, capsys):
        rc = main(["sweep", "applu", "--chaos", "explode=1"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "Traceback" not in err


class TestServiceCommands:
    """submit/jobs against a spool directory, no daemon required."""

    def _submit(self, spool, capsys, *extra):
        rc = main(["submit", "--spool", spool, "sweep", "gcc",
                   "--stop", "8", "--n-instructions", "1000000", *extra])
        out = capsys.readouterr().out
        return rc, out.strip().splitlines()[-1] if out.strip() else ""

    def test_submit_prints_job_id(self, tmp_path, capsys):
        rc, jid = self._submit(str(tmp_path / "s"), capsys)
        assert rc == 0
        assert len(jid) == 32  # the content fingerprint

    def test_duplicate_submit_is_idempotent(self, tmp_path, capsys):
        spool = str(tmp_path / "s")
        _, first = self._submit(spool, capsys)
        _, second = self._submit(spool, capsys)
        assert first == second

    def test_overload_maps_to_typed_exit_code(self, tmp_path, capsys):
        from repro.errors import ServiceOverloadError
        from repro.service import JobSpool, SpoolConfig

        spool = str(tmp_path / "s")
        JobSpool.ensure(spool, SpoolConfig(max_depth=1))
        assert self._submit(spool, capsys)[0] == 0
        rc = main(["submit", "--spool", spool, "sweep", "mcf",
                   "--stop", "8", "--n-instructions", "1000000"])
        assert rc == ServiceOverloadError.exit_code == 12
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "retry later" in err and "Traceback" not in err

    def test_submit_wait_blocks_until_done(self, tmp_path, capsys):
        import threading

        from repro.service import JobSpool, drain_queue

        spool_dir = str(tmp_path / "s")
        spool = JobSpool.ensure(spool_dir)

        def drain_soon():
            time.sleep(0.3)
            drain_queue(spool)

        t = threading.Thread(target=drain_soon)
        t.start()
        try:
            rc = main(["submit", "--spool", spool_dir, "sweep", "gcc",
                       "--stop", "8", "--n-instructions", "1000000",
                       "--wait", "--timeout", "60"])
        finally:
            t.join()
        assert rc == 0
        assert "[done]" in capsys.readouterr().err

    def test_failed_job_propagates_its_exit_code(self, tmp_path, capsys):
        import threading

        from repro.errors import JobDeadlineExceeded
        from repro.service import JobSpool, drain_queue

        spool_dir = str(tmp_path / "s")
        spool = JobSpool.ensure(spool_dir)

        def drain_soon():
            time.sleep(0.3)
            drain_queue(spool)

        t = threading.Thread(target=drain_soon)
        t.start()
        try:
            rc = main(["submit", "--spool", spool_dir, "sweep", "gcc",
                       "--stop", "8", "--n-instructions", "1000000",
                       "--deadline", "0.000001", "--wait", "--timeout", "60"])
        finally:
            t.join()
        assert rc == JobDeadlineExceeded.exit_code == 14
        err = capsys.readouterr().err
        assert "JobDeadlineExceeded" in err and "Traceback" not in err

    def test_jobs_listing_table_and_json(self, tmp_path, capsys):
        import json

        spool = str(tmp_path / "s")
        _, jid = self._submit(spool, capsys)
        assert main(["jobs", "--spool", spool]) == 0
        table = capsys.readouterr().out
        assert jid[:12] in table and "pending" in table
        assert main(["jobs", "--spool", spool, "--json"]) == 0
        records = [json.loads(line) for line in
                   capsys.readouterr().out.splitlines()]
        assert [r["id"] for r in records] == [jid]
        assert records[0]["state"] == "pending"
        assert records[0]["spec"]["app"] == "gcc"

    def test_jobs_empty_spool(self, tmp_path, capsys):
        from repro.service import JobSpool

        spool = str(tmp_path / "s")
        JobSpool.ensure(spool)
        assert main(["jobs", "--spool", spool]) == 0
        assert "(no jobs)" in capsys.readouterr().out


class TestLoadgenCLI:
    def test_run_sim_writes_trace_and_report(self, tmp_path, capsys):
        import json

        trace = tmp_path / "t.jsonl"
        report = tmp_path / "r.json"
        rc = main(["loadgen", "run", "--target", "sim", "--n-requests", "20",
                   "--workload", "scan", "--pacing", "open", "--rate", "100",
                   "--seed", "6", "--trace-out", str(trace),
                   "--report-out", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "load report (run)" in out and "outcome" in out
        assert trace.exists() and report.exists()
        doc = json.loads(report.read_text())
        assert doc["schema"] == "repro-loadreport/1"
        assert doc["outcomes"]["done"] == 20

    def test_replay_is_bit_identical(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        replayed = tmp_path / "t2.jsonl"
        assert main(["loadgen", "run", "--target", "sim", "--n-requests",
                     "15", "--seed", "9", "--trace-out", str(trace)]) == 0
        assert main(["loadgen", "replay", str(trace), "--target", "sim",
                     "--seed", "9", "--trace-out", str(replayed)]) == 0
        assert trace.read_bytes() == replayed.read_bytes()
        assert "load report (replay)" in capsys.readouterr().out

    def test_replay_derives_closed_window_from_header(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["loadgen", "run", "--target", "sim", "--pacing",
                     "closed", "--concurrency", "2", "--n-requests", "10",
                     "--trace-out", str(trace)]) == 0
        assert main(["loadgen", "replay", str(trace), "--target", "sim"]) == 0

    def test_record_then_replay_spool_traffic(self, tmp_path, capsys):
        from repro.service import JobSpool, drain_queue

        spool = str(tmp_path / "s")
        trace = tmp_path / "rec.jsonl"
        assert main(["submit", "--spool", spool, "sweep", "gcc",
                     "--stop", "4", "--n-instructions", "100000"]) == 0
        assert main(["submit", "--spool", spool, "sweep", "mcf",
                     "--stop", "4", "--n-instructions", "100000"]) == 0
        capsys.readouterr()
        assert main(["loadgen", "record", "--spool", spool,
                     "--out", str(trace)]) == 0
        assert "recorded 2 request(s)" in capsys.readouterr().out
        drain_queue(JobSpool.open(spool))
        # Replaying the recording against the same spool dedups into the
        # already-done jobs: everything completes immediately.
        assert main(["loadgen", "replay", str(trace), "--spool", spool]) == 0
        out = capsys.readouterr().out
        assert "done     2" in out

    def test_report_renders_saved_document(self, tmp_path, capsys):
        report = tmp_path / "r.json"
        assert main(["loadgen", "run", "--target", "sim", "--n-requests",
                     "5", "--report-out", str(report)]) == 0
        capsys.readouterr()
        assert main(["loadgen", "report", str(report)]) == 0
        assert "client-observed latency" in capsys.readouterr().out

    def test_missing_trace_exits_typed(self, tmp_path, capsys):
        rc = main(["loadgen", "replay", str(tmp_path / "absent.jsonl"),
                   "--target", "sim"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "no request trace" in err and "Traceback" not in err

    def test_service_target_requires_spool(self, capsys):
        rc = main(["loadgen", "run", "--target", "service"])
        assert rc == 1
        assert "--spool" in capsys.readouterr().err


class TestSpoolCommands:
    """repro spool compact/verify against a populated spool directory."""

    def _populated(self, tmp_path):
        from repro.service import JobSpec, JobSpool

        spool = JobSpool.ensure(tmp_path / "s")
        done = spool.submit(JobSpec(kind="sweep", app="gcc", stop=4,
                                    n_instructions=1_000_000))
        spool.claim("w0", now=100.0)
        spool.complete(done, "w0", {"ok": True}, elapsed=0.1)
        pending = spool.submit(JobSpec(kind="sweep", app="mcf", stop=4,
                                       n_instructions=1_000_000))
        return spool, done, pending

    def test_compact_then_verify_roundtrip(self, tmp_path, capsys):
        import json

        spool, done, pending = self._populated(tmp_path)
        assert main(["spool", "compact", "--spool", str(spool.root),
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["generation"] == 1
        assert stats["n_jobs"] == 2
        assert main(["spool", "verify", "--spool", str(spool.root)]) == 0
        out = capsys.readouterr().out
        assert "spool OK (generation 1)" in out

    def test_compact_human_output(self, tmp_path, capsys):
        spool, *_ = self._populated(tmp_path)
        assert main(["spool", "compact", "--spool", str(spool.root)]) == 0
        out = capsys.readouterr().out
        assert "generation 1" in out and "folded" in out

    def test_verify_report_file_and_json(self, tmp_path, capsys):
        import json

        spool, *_ = self._populated(tmp_path)
        report_path = tmp_path / "reports" / "verify.json"
        assert main(["spool", "verify", "--spool", str(spool.root),
                     "--json", "--out", str(report_path)]) == 0
        printed = json.loads(capsys.readouterr().out)
        saved = json.loads(report_path.read_text())
        assert printed["ok"] and saved["ok"]
        assert saved["schema"] == "repro-spoolverify/1"

    def test_verify_failure_exits_nonzero(self, tmp_path, capsys):
        from repro.service import compact

        spool, *_ = self._populated(tmp_path)
        compact(spool)
        (spool.root / "spoolsnap.json").unlink()  # lose the snapshot
        assert main(["spool", "verify", "--spool", str(spool.root)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_verify_expect_jobs_oracle(self, tmp_path, capsys):
        import json

        spool, done, pending = self._populated(tmp_path)
        oracle = tmp_path / "expect.json"
        oracle.write_text(json.dumps({done: "done", pending: "pending"}))
        assert main(["spool", "verify", "--spool", str(spool.root),
                     "--expect-jobs", str(oracle)]) == 0
        capsys.readouterr()
        oracle.write_text(json.dumps({done: "failed"}))
        assert main(["spool", "verify", "--spool", str(spool.root),
                     "--expect-jobs", str(oracle)]) == 1
        assert "mismatch" in capsys.readouterr().out

    def test_missing_spool_is_typed_error(self, tmp_path, capsys):
        from repro.errors import ServiceError

        rc = main(["spool", "verify", "--spool", str(tmp_path / "absent")])
        assert rc == ServiceError.exit_code == 11
        assert "no spool directory" in capsys.readouterr().err

    def test_serve_compaction_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--spool", "s", "--no-auto-compact",
             "--compact-after-bytes", "1024", "--compact-after-events", "9"])
        assert args.no_auto_compact
        assert args.compact_after_bytes == 1024
        assert args.compact_after_events == 9
        defaults = build_parser().parse_args(["serve", "--spool", "s"])
        assert not defaults.no_auto_compact
        assert defaults.compact_after_bytes == 4 * 1024 * 1024
