"""Failure-injection tests: the library fails loudly, not silently.

Each test drives a component into a degenerate or error state and asserts
the failure is surfaced as a clear exception (or handled deliberately),
never as silently wrong numbers.
"""

import numpy as np
import pytest

from repro.ml import Dataset, LinearRegressionModel, NeuralNetworkModel
from repro.ml.dataset import Column, ColumnRole
from repro.ml.selection import estimate_error
from repro.parallel import ProcessExecutor, SerialExecutor


def _tiny_ds(n=6):
    rng = np.random.default_rng(0)
    return Dataset(
        [Column("x", ColumnRole.NUMERIC, rng.random(n))],
        rng.random(n) + 1.0,
    )


def _raise_on_three(x):
    if x == 3:
        raise RuntimeError("task 3 exploded")
    return x


class TestExecutorFailures:
    def test_serial_propagates_task_exception(self):
        with pytest.raises(RuntimeError, match="task 3 exploded"):
            SerialExecutor().map(_raise_on_three, [1, 2, 3, 4])

    def test_process_pool_propagates_task_exception(self):
        with ProcessExecutor(max_workers=2) as ex:
            with pytest.raises(RuntimeError, match="task 3 exploded"):
                ex.map(_raise_on_three, [1, 2, 3, 4])


class TestDegenerateTrainingData:
    def test_constant_target_lr(self):
        ds = Dataset(
            [Column("x", ColumnRole.NUMERIC, np.arange(10, dtype=float))],
            np.full(10, 5.0),
        )
        model = LinearRegressionModel("backward").fit(ds)
        np.testing.assert_allclose(model.predict(ds), 5.0, atol=1e-9)

    def test_constant_target_nn(self):
        ds = Dataset(
            [Column("x", ColumnRole.NUMERIC, np.arange(20, dtype=float))],
            np.full(20, 5.0),
        )
        model = NeuralNetworkModel("single", seed=1).fit(ds)
        pred = model.predict(ds)
        assert np.all(np.isfinite(pred))
        np.testing.assert_allclose(pred, 5.0, atol=1.0)

    def test_single_predictor_duplicated_rows(self):
        # All-identical rows: rank-deficient beyond repair; must not crash.
        ds = Dataset(
            [Column("x", ColumnRole.NUMERIC, np.full(8, 2.0)),
             Column("y", ColumnRole.NUMERIC, np.arange(8, dtype=float))],
            np.arange(8, dtype=float) + 1.0,
        )
        model = LinearRegressionModel("enter").fit(ds)
        assert np.all(np.isfinite(model.predict(ds)))

    def test_two_record_training(self):
        ds = _tiny_ds(2)
        model = LinearRegressionModel("enter").fit(ds)
        assert np.all(np.isfinite(model.predict(ds)))

    def test_cv_on_tiny_dataset_still_works(self, rng):
        est = estimate_error(
            lambda: LinearRegressionModel("enter"), _tiny_ds(4), rng, n_reps=3)
        assert len(est.per_rep) == 3
        assert all(np.isfinite(e) for e in est.per_rep)

    def test_cv_on_single_record_rejected(self, rng):
        with pytest.raises(ValueError):
            estimate_error(
                lambda: LinearRegressionModel("enter"), _tiny_ds(1), rng)


class TestPredictionTimeMismatches:
    def test_missing_column_at_predict(self):
        train = _tiny_ds()
        model = LinearRegressionModel("enter").fit(train)
        bad = Dataset(
            [Column("other", ColumnRole.NUMERIC, np.arange(3, dtype=float))],
            np.ones(3),
        )
        with pytest.raises(KeyError):
            model.predict(bad)

    def test_categorical_becomes_nonnumeric_at_predict(self):
        n = 8
        train = Dataset(
            [Column("lvl", ColumnRole.CATEGORICAL,
                    np.array(["1", "2"] * (n // 2)))],
            np.arange(n, dtype=float) + 1.0,
        )
        model = LinearRegressionModel("enter").fit(train)  # coerces "1"/"2"
        bad = Dataset(
            [Column("lvl", ColumnRole.CATEGORICAL,
                    np.array(["one", "two"] * (n // 2)))],
            np.arange(n, dtype=float) + 1.0,
        )
        with pytest.raises(ValueError, match="numeric-coercible"):
            model.predict(bad)


class TestSimulatorEdges:
    def test_trace_shorter_than_interval(self):
        from repro.simulator import generate_trace, get_profile, basic_block_vectors

        tr = generate_trace(get_profile("gzip"), 500, interval_length=10_000)
        bbv = basic_block_vectors(tr)
        assert bbv.shape[0] == 1  # single partial interval, not a crash

    def test_interval_model_rejects_negative_instructions(self):
        from repro.simulator import enumerate_design_space, evaluate_config, get_profile

        cfg = next(iter(enumerate_design_space()))
        with pytest.raises(ValueError):
            evaluate_config(cfg, get_profile("gcc"), n_instructions=-5)
