"""Tests for the shared exception taxonomy."""

import pytest

from repro.errors import (
    CheckpointError,
    CircuitOpenError,
    InjectedFault,
    JobDeadlineExceeded,
    ReproError,
    ServiceError,
    ServiceOverloadError,
    SweepAborted,
    TaskFailed,
    TaskFailure,
    TaskTimeout,
    exit_code_for,
)


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(TaskFailed, ReproError)
        assert issubclass(TaskTimeout, TaskFailed)
        assert issubclass(SweepAborted, ReproError)
        assert issubclass(CheckpointError, ReproError)
        # Injected faults model arbitrary task errors, not harness errors.
        assert not issubclass(InjectedFault, ReproError)

    def test_service_hierarchy(self):
        assert issubclass(ServiceError, ReproError)
        for cls in (ServiceOverloadError, CircuitOpenError, JobDeadlineExceeded):
            assert issubclass(cls, ServiceError)

    def test_exit_codes_distinct_and_nonzero(self):
        codes = [TaskFailed.exit_code, TaskTimeout.exit_code,
                 SweepAborted.exit_code, CheckpointError.exit_code,
                 ServiceError.exit_code, ServiceOverloadError.exit_code,
                 CircuitOpenError.exit_code, JobDeadlineExceeded.exit_code]
        assert len(set(codes)) == len(codes)
        assert all(c not in (0, 1, 2) for c in codes)  # 2 is argparse's

    def test_service_error_payloads(self):
        e = ServiceOverloadError("full", depth=9, max_depth=8)
        assert (e.depth, e.max_depth) == (9, 8)
        e = CircuitOpenError("open", breaker="disk", retry_after=1.5)
        assert (e.breaker, e.retry_after) == ("disk", 1.5)
        e = JobDeadlineExceeded("late", job_id="abc", deadline_s=2.0)
        assert (e.job_id, e.deadline_s) == ("abc", 2.0)

    def test_exit_code_for_round_trips_every_class(self):
        for cls in (ReproError, TaskFailed, TaskTimeout, CheckpointError,
                    ServiceError, ServiceOverloadError, CircuitOpenError,
                    JobDeadlineExceeded):
            assert exit_code_for(cls.__name__) == cls.exit_code

    def test_exit_code_for_unknown_name_is_generic(self):
        assert exit_code_for("SomethingNeverHeardOf") == ReproError.exit_code
        assert exit_code_for("") == ReproError.exit_code

    def test_task_failure_summary(self):
        f = TaskFailure(index=7, fingerprint="ab12", attempts=3,
                        error_type="ValueError", message="boom", kind="exception")
        s = f.summary()
        assert "task 7" in s and "3 attempt(s)" in s and "ValueError: boom" in s

    def test_sweep_aborted_carries_partials(self):
        failures = [TaskFailure(1, "fp", 2, "RuntimeError", "x", "crash")]
        exc = SweepAborted(3, [10, None, 30], failures, checkpointed=True)
        assert exc.n_completed == 2
        assert exc.partial_results == [10, None, 30]
        msg = str(exc)
        assert "1/3 tasks failed" in msg and "resume" in msg
        assert "\n" not in msg  # one-line, CLI-ready

    def test_task_failed_carries_failure_record(self):
        f = TaskFailure(0, "fp", 1, "OSError", "gone", "exception")
        exc = TaskFailed("task 0 failed", failure=f)
        assert exc.failure is f
        with pytest.raises(TaskFailed):
            raise exc
