"""Behavioral tests for every eviction policy, plus the shared contract.

Each policy gets targeted tests of its distinguishing behavior (LRU
recency order, LFU frequency protection, 2Q ghost-gated promotion, ARC
adaptation), and all four share a regression suite for the contract
hazards: a refresh at capacity must never evict or bump the eviction
counter, and ghost bookkeeping must stay invisible to ``len``/``in``.
"""

from __future__ import annotations

import pytest

from repro.cache import (
    ARCPolicy,
    LFUPolicy,
    LRUPolicy,
    POLICIES,
    TwoQPolicy,
    available_policies,
    make_policy,
    normalize_policy,
)

ALL_POLICIES = sorted(POLICIES)


# -- registry ----------------------------------------------------------------


def test_registry_contents():
    assert set(POLICIES) == {"lru", "lfu", "2q", "arc"}
    assert available_policies() == ("2q", "arc", "lfu", "lru")


def test_normalize_accepts_aliases_and_case():
    assert normalize_policy("LRU") == "lru"
    assert normalize_policy("twoq") == "2q"
    assert normalize_policy(" arc ") == "arc"


def test_normalize_rejects_unknown():
    with pytest.raises(ValueError, match="unknown cache policy"):
        normalize_policy("fifo")


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_make_policy_builds_named_class(name):
    policy = make_policy(name, 8)
    assert policy.name == name
    assert policy.max_entries == 8


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_capacity_must_be_positive(name):
    with pytest.raises(ValueError, match="max_entries"):
        make_policy(name, 0)


# -- shared contract ---------------------------------------------------------


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_get_put_roundtrip_and_counters(name):
    policy = make_policy(name, 4)
    assert policy.get("a") is None
    policy.put("a", 1)
    assert policy.get("a") == 1
    assert "a" in policy and len(policy) == 1
    counters = policy.counters()
    assert counters["policy"] == name
    assert counters["hits"] == 1 and counters["misses"] == 1
    assert counters["evictions"] == 0
    assert counters["entries"] == 1 and counters["max_entries"] == 4


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_size_never_exceeds_capacity(name):
    policy = make_policy(name, 3)
    for i in range(20):
        policy.put(f"k{i}", i)
        assert len(policy) <= 3
    assert policy.counters()["evictions"] == 17


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_refresh_at_capacity_never_evicts(name):
    """Regression: re-putting a resident key in a full cache must be a
    value update, not an insert — no eviction, no eviction-counter bump."""
    policy = make_policy(name, 3)
    for i in range(3):
        policy.put(f"k{i}", i)
    assert len(policy) == 3 and policy.counters()["evictions"] == 0
    for i in range(3):
        policy.put(f"k{i}", i + 100)  # refresh every resident at capacity
    assert len(policy) == 3
    assert policy.counters()["evictions"] == 0
    for i in range(3):
        assert policy.get(f"k{i}") == i + 100


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_evicted_keys_are_really_gone(name):
    """Ghost bookkeeping (2Q/ARC) must not leak into residency checks."""
    policy = make_policy(name, 2)
    for i in range(10):
        policy.put(f"k{i}", i)
    resident = [f"k{i}" for i in range(10) if f"k{i}" in policy]
    assert len(resident) == len(policy) <= 2
    for i in range(10):
        key = f"k{i}"
        if key not in resident:
            assert policy.get(key) is None


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_explicit_evict_and_clear(name):
    policy = make_policy(name, 4)
    for i in range(4):
        policy.put(f"k{i}", i)
    victim = policy.evict()
    assert victim is not None and victim not in policy
    assert len(policy) == 3
    assert policy.clear() == 3
    assert len(policy) == 0
    assert policy.evict() is None
    # counters survive clear(); only contents are dropped
    assert policy.counters()["evictions"] >= 1


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_get_default_does_not_shadow_none_values(name):
    policy = make_policy(name, 4)
    sentinel = object()
    assert policy.get("missing", sentinel) is sentinel
    policy.put("present", None)
    assert policy.get("present", sentinel) is None


# -- LRU ---------------------------------------------------------------------


def test_lru_evicts_least_recently_used():
    lru = LRUPolicy(2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1     # refresh a; b is now LRU
    lru.put("c", 3)
    assert "b" not in lru
    assert lru.get("a") == 1 and lru.get("c") == 3


def test_lru_put_refresh_updates_recency():
    lru = LRUPolicy(2)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.put("a", 10)             # refresh via put, not get
    lru.put("c", 3)
    assert "b" not in lru and lru.get("a") == 10


# -- LFU ---------------------------------------------------------------------


def test_lfu_protects_frequent_keys():
    lfu = LFUPolicy(2)
    lfu.put("hot", 1)
    for _ in range(5):
        assert lfu.get("hot") == 1
    lfu.put("cold1", 2)
    lfu.put("cold2", 3)          # evicts cold1 (freq 1) not hot (freq 6)
    assert "hot" in lfu and "cold2" in lfu and "cold1" not in lfu


def test_lfu_ties_break_by_recency():
    lfu = LFUPolicy(2)
    lfu.put("a", 1)
    lfu.put("b", 2)              # both freq 1; a is older
    lfu.put("c", 3)
    assert "a" not in lfu and "b" in lfu


# -- 2Q ----------------------------------------------------------------------


def test_twoq_one_shot_keys_never_reach_main():
    """A scan's single-use keys die in A1in without touching Am."""
    twoq = TwoQPolicy(8)
    twoq.put("hot", 1)
    twoq.get("hot")
    for i in range(50):
        twoq.put(f"scan{i}", i)
    assert twoq.counters()["ghost_promotions"] == 0
    assert twoq.counters()["am"] == 0


def test_twoq_ghost_hit_promotes_to_main():
    twoq = TwoQPolicy(8)         # k_in=2, k_out=4
    twoq.put("x", 1)
    for i in range(8):           # fill to capacity, then push x out of A1in
        twoq.put(f"f{i}", i)
    assert "x" not in twoq       # ghost: remembered but not resident
    twoq.put("x", 2)             # ghost hit -> straight into Am
    assert twoq.counters()["ghost_promotions"] == 1
    assert twoq.counters()["am"] == 1
    assert twoq.get("x") == 2


# -- ARC ---------------------------------------------------------------------


def test_arc_ghost_hits_move_adaptation_target():
    arc = ARCPolicy(4)
    assert arc.counters()["target_p"] == 0.0
    arc.put("a", 1)
    arc.get("a")                 # a -> T2, so replacement spills T1 into B1
    for i in range(4):           # churn: k0 is pushed out into the B1 ghosts
        arc.put(f"k{i}", i)
    assert "k0" not in arc
    assert arc.counters()["b1_ghosts"] >= 1
    arc.put("k0", 99)            # B1 ghost hit -> p grows (favor recency)
    assert arc.counters()["b1_hits"] == 1
    assert arc.counters()["target_p"] > 0.0


def test_arc_frequent_keys_live_in_t2():
    arc = ARCPolicy(4)
    arc.put("a", 1)
    arc.get("a")                 # second touch -> T2
    assert arc.counters()["t2"] == 1 and arc.counters()["t1"] == 0
    for i in range(3):
        arc.put(f"k{i}", i)
    arc.put("k3", 3)             # full: replacement prefers T1 over T2
    assert "a" in arc
