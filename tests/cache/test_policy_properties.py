"""Property-based tests for the invariants every eviction policy shares.

One seeded random workload generator drives all four policies through
the same mixed get/put/evict/clear operation streams, checking after
every step the contract :class:`repro.cache.EvictionPolicy` promises:

* residency never exceeds ``max_entries``;
* a key just ``put`` is immediately gettable with its exact value;
* an evicted key is really gone (``get`` misses, ``in`` is False);
* hits + misses equals the number of ``get`` calls, and evictions
  equals insertions minus residents (clears accounted separately).

Runs under hypothesis when installed; falls back to a fixed
seeded-random sweep otherwise, so the properties stay tested in minimal
environments.
"""

from __future__ import annotations

import random

import pytest

from repro.cache import POLICIES, make_policy

try:
    from hypothesis import given, settings, strategies as st

    def seeds(n_examples: int = 30, max_seed: int = 10**6):
        """Feed the test a shrinkable integer seed via hypothesis."""

        def deco(fn):
            return settings(max_examples=n_examples, deadline=None)(
                given(st.integers(0, max_seed))(fn)
            )

        return deco

except ImportError:  # pragma: no cover - exercised only without hypothesis

    def seeds(n_examples: int = 30, max_seed: int = 10**6):
        """Fallback: a fixed, seeded sweep of random example seeds."""
        picker = random.Random(20260808)
        chosen = [picker.randrange(max_seed + 1) for _ in range(n_examples)]

        def deco(fn):
            return pytest.mark.parametrize("seed", chosen)(fn)

        return deco


ALL_POLICIES = sorted(POLICIES)


def _run_workload(policy_name: str, seed: int, n_ops: int = 400) -> None:
    rng = random.Random(seed)
    capacity = rng.randint(1, 12)
    policy = make_policy(policy_name, capacity)
    n_keys = rng.randint(1, 30)
    keys = [f"k{i}" for i in range(n_keys)]

    contents: dict[str, int] = {}   # mirror of what must be resident
    n_gets = 0
    n_insertions = 0
    n_cleared = 0

    for step in range(n_ops):
        op = rng.random()
        key = rng.choice(keys)
        if op < 0.45:
            n_gets += 1
            got = policy.get(key)
            if key in contents:
                assert got == contents[key], \
                    f"{policy_name}: resident {key} returned {got!r}"
        elif op < 0.85:
            value = step
            was_resident = key in policy
            policy.put(key, value)
            if not was_resident:
                n_insertions += 1
            contents[key] = value
            assert key in policy, f"{policy_name}: just-put {key} not resident"
            n_gets += 1
            assert policy.get(key) == value
        elif op < 0.95:
            victim = policy.evict()
            if victim is not None:
                assert victim not in policy
                contents.pop(victim, None)
        else:
            n_cleared += policy.clear()
            contents.clear()
            assert len(policy) == 0

        # residency bound + mirror consistency, every single step
        assert len(policy) <= capacity
        evicted = [k for k in list(contents) if k not in policy]
        for k in evicted:       # the policy chose these victims; mirror it
            del contents[k]
        assert len(contents) == len(policy), \
            f"{policy_name}: mirror {len(contents)} != resident {len(policy)}"

    counters = policy.counters()
    assert counters["hits"] + counters["misses"] == n_gets
    assert counters["evictions"] == n_insertions - len(policy) - n_cleared
    assert counters["entries"] == len(policy)
    # every mirrored key must still serve its exact last value
    n = len(policy)
    for k, v in contents.items():
        assert policy.get(k) == v
    assert len(policy) == n     # reads never change residency


@pytest.mark.parametrize("name", ALL_POLICIES)
@seeds()
def test_policy_invariants_under_random_workload(name, seed):
    _run_workload(name, seed)


@pytest.mark.parametrize("name", ALL_POLICIES)
@seeds(n_examples=10)
def test_capacity_one_degenerate_cache(name, seed):
    """Every policy must behave at the smallest legal capacity."""
    rng = random.Random(seed)
    policy = make_policy(name, 1)
    last = None
    for step in range(100):
        key = f"k{rng.randrange(5)}"
        policy.put(key, step)
        last = (key, step)
        assert len(policy) == 1
        assert policy.get(last[0]) == last[1]
