"""Tests for cache access-trace capture (schema ``repro-cachetrace/1``)."""

from __future__ import annotations

import json

import pytest

from repro.cache import (
    CACHE_TRACE_SCHEMA,
    AccessRecorder,
    ResultCache,
    capture_enabled,
    configure_capture,
    get_recorder,
    read_cache_trace,
    shutdown_capture,
    validate_trace_record,
)
from repro.cache.capture import record_access


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    shutdown_capture()
    yield
    shutdown_capture()


# -- AccessRecorder ----------------------------------------------------------


def test_recorder_records_and_snapshots():
    rec = AccessRecorder()
    rec.record("deadbeef", None, "sweep-cycles", True, "memory")
    rec.record("cafebabe", "tenant-a", "design-matrix", False, None)
    snap = rec.snapshot()
    assert [r["key"] for r in snap] == ["deadbeef", "cafebabe"]
    assert snap[0]["schema"] == CACHE_TRACE_SCHEMA
    assert snap[1]["namespace"] == "tenant-a" and snap[1]["layer"] is None
    for r in snap:
        validate_trace_record(r)


def test_ring_bound_drops_oldest_and_counts():
    rec = AccessRecorder(capacity=3)
    for i in range(10):
        rec.record(f"k{i}", None, "kind", False, None)
    assert len(rec) == 3
    assert rec.n_recorded == 10 and rec.n_dropped == 7
    assert [r["key"] for r in rec.snapshot()] == ["k7", "k8", "k9"]


def test_recorder_rejects_nonpositive_capacity():
    with pytest.raises(ValueError, match="capacity"):
        AccessRecorder(capacity=0)


def test_flush_appends_jsonl_and_clears_ring(tmp_path):
    path = tmp_path / "trace.jsonl"
    rec = AccessRecorder(path)
    rec.record("aa", None, "kind", True, "disk")
    assert rec.flush() == 1
    rec.record("bb", None, "kind", False, None)
    assert rec.flush() == 1         # second flush appends, ring was cleared
    assert rec.flush() == 0         # nothing buffered
    assert [r["key"] for r in read_cache_trace(path)] == ["aa", "bb"]
    assert rec.n_flushed == 2 and len(rec) == 0


def test_flush_without_path_retains_buffer():
    rec = AccessRecorder()
    rec.record("aa", None, "kind", False, None)
    assert rec.flush() == 0
    assert len(rec) == 1


# -- module-global capture plumbing ------------------------------------------


def test_capture_disabled_is_noop():
    assert not capture_enabled()
    assert get_recorder() is None
    record_access("k", None, "kind", False, None)   # must not raise
    assert shutdown_capture() == 0


def test_configure_and_shutdown_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    rec = configure_capture(path)
    assert capture_enabled() and get_recorder() is rec
    record_access("k1", "ns", "kind", True, "memory")
    assert shutdown_capture() == 1
    assert not capture_enabled()
    records = list(read_cache_trace(path))
    assert len(records) == 1 and records[0]["namespace"] == "ns"


def test_reconfigure_flushes_previous_recorder(tmp_path):
    first = tmp_path / "a.jsonl"
    configure_capture(first)
    record_access("k1", None, "kind", False, None)
    configure_capture(tmp_path / "b.jsonl")     # must flush the first
    assert [r["key"] for r in read_cache_trace(first)] == ["k1"]
    shutdown_capture()


def test_result_cache_probes_are_recorded(tmp_path):
    configure_capture(tmp_path / "trace.jsonl")
    cache = ResultCache(disk_root=tmp_path / "store", namespace="t")
    cache.get_or_compute({"q": 1}, lambda: 41, kind="answer")   # miss
    cache.get_or_compute({"q": 1}, lambda: 41, kind="answer")   # memory hit
    cache.memory.clear()
    cache.get_or_compute({"q": 1}, lambda: 41, kind="answer")   # disk hit
    shutdown_capture()
    records = list(read_cache_trace(tmp_path / "trace.jsonl"))
    assert [(r["hit"], r["layer"]) for r in records] == [
        (False, None), (True, "memory"), (True, "disk")]
    assert all(r["namespace"] == "t" and r["kind"] == "answer"
               for r in records)
    assert len({r["key"] for r in records}) == 1


# -- schema validation and the reader ----------------------------------------


def test_validate_rejects_bad_records():
    good = {"schema": CACHE_TRACE_SCHEMA, "key": "k", "namespace": None,
            "kind": "kind", "hit": True, "layer": "memory", "t": 1.0}
    validate_trace_record(good)
    with pytest.raises(ValueError, match="must be an object"):
        validate_trace_record([good])
    with pytest.raises(ValueError, match="missing field"):
        validate_trace_record({k: v for k, v in good.items() if k != "kind"})
    with pytest.raises(ValueError, match="unknown cache-trace schema"):
        validate_trace_record(dict(good, schema="repro-cachetrace/999"))
    with pytest.raises(ValueError, match="layer"):
        validate_trace_record(dict(good, layer="l4"))
    with pytest.raises(ValueError, match="hit without a serving layer"):
        validate_trace_record(dict(good, layer=None))
    with pytest.raises(ValueError, match="type"):
        validate_trace_record(dict(good, hit="yes"))


def test_reader_tolerates_torn_tail(tmp_path):
    path = tmp_path / "trace.jsonl"
    rec = {"schema": CACHE_TRACE_SCHEMA, "key": "k", "namespace": None,
           "kind": "kind", "hit": False, "layer": None, "t": 1.0}
    path.write_text(json.dumps(rec) + "\n" + '{"schema": "repro-cach')
    assert [r["key"] for r in read_cache_trace(path)] == ["k"]


def test_reader_raises_on_mid_file_corruption(tmp_path):
    path = tmp_path / "trace.jsonl"
    rec = {"schema": CACHE_TRACE_SCHEMA, "key": "k", "namespace": None,
           "kind": "kind", "hit": False, "layer": None, "t": 1.0}
    path.write_text("not json\n" + json.dumps(rec) + "\n")
    with pytest.raises(ValueError, match=":1:"):
        list(read_cache_trace(path))
