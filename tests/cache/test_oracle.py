"""Tests for the Belady/OPT oracle benchmark and its synthetic traces.

``benchmarks/`` is not a package; the oracle and trace-generator modules
are imported by path, the same way the benchmark script itself runs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from cache_oracle import (  # noqa: E402
    PINNED,
    belady_hit_rate,
    evaluate_trace,
    replay_policy,
    run_checks,
)
from cache_traces import WORKLOADS, TraceGenerator  # noqa: E402

from repro.cache import POLICIES  # noqa: E402


# -- trace generator ---------------------------------------------------------


def test_generator_is_deterministic_per_seed():
    a = TraceGenerator(seed=7).all_traces()
    b = TraceGenerator(seed=7).all_traces()
    c = TraceGenerator(seed=8).all_traces()
    assert set(a) == set(WORKLOADS)
    for name in WORKLOADS:
        assert a[name].keys == b[name].keys
        assert a[name].keys != c[name].keys


def test_generator_workload_shapes():
    traces = TraceGenerator(seed=0).all_traces()
    for name, trace in traces.items():
        assert trace.n_requests == 20000
        assert trace.n_distinct > 0
        assert all(k.startswith("k") for k in trace.keys[:100])
    # phase-shift really shifts: first and last phases share no hot keys
    ps = traces["phase_shift"].keys
    first, last = set(ps[:2500]), set(ps[-2500:])
    hot_first = {k for k in first if int(k[1:]) < 10_000}
    hot_last = {k for k in last if int(k[1:]) < 10_000}
    assert not (hot_first & hot_last)
    # oscillating alternates between two disjoint working sets
    osc = traces["oscillating"].keys
    assert set(osc[:2000]).isdisjoint(set(osc[2000:4000]))


# -- Belady oracle -----------------------------------------------------------


def test_belady_exact_on_tiny_trace():
    # capacity 2, trace a b c a b: OPT evicts c (never reused) -> 2 hits
    assert belady_hit_rate(list("abcab"), 2) == pytest.approx(2 / 5)


def test_belady_perfect_when_everything_fits():
    keys = list("abcabcabc")
    assert belady_hit_rate(keys, 3) == pytest.approx(6 / 9)  # only cold misses


def test_belady_capacity_one():
    assert belady_hit_rate(list("aabbc"), 1) == pytest.approx(2 / 5)


def test_belady_rejects_bad_capacity():
    with pytest.raises(ValueError, match="capacity"):
        belady_hit_rate(list("ab"), 0)


def test_belady_dominates_every_policy_on_random_trace():
    import random

    rng = random.Random(42)
    keys = [f"k{rng.randrange(60)}" for _ in range(3000)]
    for capacity in (4, 10, 25):
        oracle = belady_hit_rate(keys, capacity)
        for policy in POLICIES:
            rate = replay_policy(policy, keys, capacity)["hit_rate"]
            assert rate <= oracle + 1e-9, \
                f"{policy}@{capacity} beat the oracle: {rate} > {oracle}"


def test_belady_beats_lru_on_adversarial_loop():
    # cyclic scan of N+1 keys through capacity N: LRU gets zero hits,
    # OPT keeps N-1 of them resident
    keys = [f"k{i % 5}" for i in range(500)]
    assert replay_policy("lru", keys, 4)["hit_rate"] == 0.0
    assert belady_hit_rate(keys, 4) > 0.7


# -- replay + checks ---------------------------------------------------------


def test_replay_policy_counters_match_trace():
    keys = ["a", "b", "a", "c", "a"]
    counters = replay_policy("lru", keys, 10)
    assert counters["hits"] == 2 and counters["misses"] == 3
    assert counters["hit_rate"] == pytest.approx(2 / 5)


def test_evaluate_trace_curves_cover_policies_and_oracle():
    keys = [f"k{i % 30}" for i in range(600)]
    entry = evaluate_trace("loop", keys, fractions=(0.2, 0.5))
    assert entry["n_distinct"] == 30
    assert len(entry["curves"]) == 2
    for curve in entry["curves"]:
        assert set(curve["hit_rate"]) == set(POLICIES) | {"oracle"}
        for policy in POLICIES:
            assert curve["hit_rate"][policy] <= \
                curve["hit_rate"]["oracle"] + 1e-9


def test_pinned_workloads_match_generated_names():
    assert set(PINNED) == set(WORKLOADS)
    for pins in PINNED.values():
        assert set(pins) == set(POLICIES) | {"oracle"}


def test_run_checks_flags_regression_and_oracle_violation():
    # a synthetic workloads dict where LRU "beats" the oracle
    entry = {
        "name": "scan",
        "n_requests": 10,
        "n_distinct": 5,
        "curves": [{
            "capacity": 4, "capacity_fraction": 0.1,
            "hit_rate": {"lru": 0.9, "lfu": 0.1, "2q": 0.1, "arc": 0.1,
                         "oracle": 0.5},
        }],
    }
    failures, _ = run_checks({"scan": entry})
    assert any("replay bug" in f for f in failures)
    assert any("pin regression" in f for f in failures)


def test_run_checks_flags_lru_unbeaten():
    entry = {
        "name": "scan",
        "n_requests": 10,
        "n_distinct": 5,
        "curves": [{
            "capacity": 4, "capacity_fraction": 0.1,
            "hit_rate": {"lru": 0.99, "lfu": 0.99, "2q": 0.99, "arc": 0.99,
                         "oracle": 0.99},
        }],
    }
    failures, _ = run_checks({"scan": entry})
    assert any("no shipped policy beat LRU" in f for f in failures)
