"""Stable fingerprints: equality, sensitivity, and cross-process stability."""

from __future__ import annotations

import subprocess
import sys
from dataclasses import dataclass

import numpy as np
import pytest

from repro.cache import code_version, stable_fingerprint
from repro.simulator import get_profile, pack_design_space


@dataclass(frozen=True)
class _Point:
    x: int
    y: float


class TestStability:
    def test_equal_values_equal_digests(self):
        a = {"b": [1, 2.5, "s"], "a": np.arange(4)}
        b = {"a": np.arange(4), "b": [1, 2.5, "s"]}
        assert stable_fingerprint(a) == stable_fingerprint(b)

    def test_digest_is_hex_sha256(self):
        fp = stable_fingerprint((1, "x"))
        assert len(fp) == 64
        int(fp, 16)  # raises if not hex

    def test_cross_process_stability(self):
        """The same value fingerprints identically in a fresh interpreter.

        In-process ``hash()`` is salted per run; a content fingerprint must
        not be. This is what makes disk entries reusable across CLI
        invocations and checkpoint resumes.
        """
        snippet = (
            "import numpy as np\n"
            "from repro.cache import stable_fingerprint\n"
            "print(stable_fingerprint(("
            "'sweep-cycles', np.arange(10, dtype=np.int64), 2.5, 'gcc')))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", snippet], capture_output=True, text=True,
            check=True)
        here = stable_fingerprint(
            ("sweep-cycles", np.arange(10, dtype=np.int64), 2.5, "gcc"))
        assert out.stdout.strip() == here

    def test_real_sweep_key_is_stable(self, design_space):
        block = pack_design_space(design_space)
        key = ("sweep-cycles", block.to_arrays(), get_profile("gcc"), 1e8)
        assert stable_fingerprint(key) == stable_fingerprint(key)


class TestSensitivity:
    def test_value_changes_change_digest(self):
        base = stable_fingerprint([1, 2, 3])
        assert stable_fingerprint([1, 2, 4]) != base
        assert stable_fingerprint([1, 2]) != base

    def test_type_distinctions(self):
        assert stable_fingerprint(1) != stable_fingerprint(1.0)
        assert stable_fingerprint(1) != stable_fingerprint(True)
        assert stable_fingerprint(0) != stable_fingerprint(False)
        assert stable_fingerprint("1") != stable_fingerprint(1)
        assert stable_fingerprint(b"ab") != stable_fingerprint("ab")

    def test_array_dtype_and_shape_matter(self):
        a = np.arange(6, dtype=np.int64)
        assert stable_fingerprint(a) != stable_fingerprint(a.astype(np.int32))
        assert stable_fingerprint(a) != stable_fingerprint(a.reshape(2, 3))

    def test_nested_boundaries_are_unambiguous(self):
        assert stable_fingerprint([[1], [2]]) != stable_fingerprint([[1, 2]])
        assert stable_fingerprint([1, [2]]) != stable_fingerprint([[1], 2])

    def test_dataclass_fields_and_type_matter(self):
        assert (stable_fingerprint(_Point(1, 2.0))
                != stable_fingerprint(_Point(1, 3.0)))
        assert (stable_fingerprint(_Point(1, 2.0))
                != stable_fingerprint((1, 2.0)))

    def test_config_change_changes_sweep_key(self, design_space):
        profile = get_profile("gcc")
        a = pack_design_space(design_space[:10])
        b = pack_design_space(design_space[1:11])
        assert (stable_fingerprint((a.to_arrays(), profile))
                != stable_fingerprint((b.to_arrays(), profile)))

    def test_float_edge_cases(self):
        assert stable_fingerprint(0.0) != stable_fingerprint(-0.0)
        nan = float("nan")
        assert stable_fingerprint(nan) == stable_fingerprint(nan)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="fingerprint"):
            stable_fingerprint(object())
        with pytest.raises(TypeError, match="object-dtype"):
            stable_fingerprint(np.array([object()]))


class TestCodeVersion:
    def test_deterministic_within_process(self):
        assert code_version() == code_version()

    def test_reflects_simulator_sources(self):
        """A rebuilt digest over the same sources matches; the cached one is real."""
        import hashlib

        from repro.cache import fingerprint as fp_mod

        h = hashlib.sha256()
        for chunk in fp_mod._iter_source_bytes():
            h.update(len(chunk).to_bytes(8, "big"))
            h.update(chunk)
        assert code_version() == h.hexdigest()
