"""Result-cache correctness: layers, invalidation, corruption, eviction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import DiskStore, LRUCache, ResultCache
from repro.cache import result_cache as rc_mod
from repro.simulator import get_profile, sweep_design_space


class TestLRUCache:
    def test_hit_miss_counters(self):
        lru = LRUCache(max_entries=4)
        assert lru.get("a") is None
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert (lru.hits, lru.misses, lru.evictions) == (1, 1, 0)

    def test_eviction_accounting_and_order(self):
        lru = LRUCache(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")          # refresh "a" -> "b" becomes LRU
        lru.put("c", 3)       # evicts "b"
        assert "b" not in lru
        assert "a" in lru and "c" in lru
        assert lru.evictions == 1
        assert len(lru) == 2

    def test_put_refresh_does_not_evict(self):
        lru = LRUCache(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)
        assert lru.evictions == 0
        assert lru.get("a") == 10

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            LRUCache(max_entries=0)


class TestDiskStore:
    def test_round_trip(self, tmp_path):
        store = DiskStore(tmp_path)
        value = {"cycles": np.arange(5.0)}
        store.put("ab" + "0" * 62, value)
        loaded = store.get("ab" + "0" * 62)
        assert np.array_equal(loaded["cycles"], value["cycles"])
        assert len(store) == 1
        assert store.size_bytes() > 0

    def test_missing_key_is_default(self, tmp_path):
        store = DiskStore(tmp_path)
        assert store.get("cd" + "0" * 62, default="nope") == "nope"
        assert store.misses == 1

    @pytest.mark.parametrize("corruption", ["truncate", "flip", "garbage"])
    def test_corrupted_entry_recomputes_not_crashes(self, tmp_path, corruption):
        store = DiskStore(tmp_path)
        key = "ef" + "0" * 62
        store.put(key, [1, 2, 3])
        path = store._path(key)
        raw = path.read_bytes()
        if corruption == "truncate":
            path.write_bytes(raw[: len(raw) // 2])
        elif corruption == "flip":
            raw = bytearray(raw)
            raw[-1] ^= 0xFF
            path.write_bytes(bytes(raw))
        else:
            path.write_bytes(b"not a cache entry at all")
        assert store.get(key, default="recompute") == "recompute"
        assert not path.exists(), "corrupt entry should be discarded"

    def test_clear(self, tmp_path):
        store = DiskStore(tmp_path)
        for i in range(3):
            store.put(f"{i:02d}" + "0" * 62, i)
        assert store.clear() == 3
        assert len(store) == 0


class TestResultCache:
    def test_memory_then_disk_then_compute(self, tmp_path):
        calls = []

        def compute():
            calls.append(1)
            return 42

        cache = ResultCache(disk_root=tmp_path)
        assert cache.get_or_compute(("k",), compute) == 42
        assert cache.get_or_compute(("k",), compute) == 42
        assert len(calls) == 1
        assert cache.events == ["miss:result", "hit:memory:result"]

        fresh = ResultCache(disk_root=tmp_path)  # same disk, cold memory
        assert fresh.get_or_compute(("k",), compute) == 42
        assert len(calls) == 1
        assert fresh.events == ["hit:disk:result"]
        stats = fresh.stats()
        assert stats.disk_hits == 1 and stats.hits == 1 and stats.misses == 0

    def test_key_change_invalidates(self):
        cache = ResultCache()
        a = cache.get_or_compute(("config", 1), lambda: "one")
        b = cache.get_or_compute(("config", 2), lambda: "two")
        assert (a, b) == ("one", "two")
        assert cache.stats().hits == 0

    def test_code_version_part_invalidates(self, monkeypatch):
        """Simulates editing the simulator: the version part must miss."""
        from repro.cache import fingerprint as fp_mod

        cache = ResultCache()
        v1 = fp_mod.code_version()
        cache.get_or_compute(("cycles", v1), lambda: "old")
        monkeypatch.setattr(fp_mod, "code_version", lambda: "deadbeef")
        got = cache.get_or_compute(
            ("cycles", fp_mod.code_version()), lambda: "new")
        assert got == "new"

    def test_eviction_events(self):
        cache = ResultCache(max_entries=1)
        cache.get_or_compute(("a",), lambda: 1)
        cache.get_or_compute(("b",), lambda: 2)
        assert "evict:memory" in cache.events
        assert cache.stats().memory_evictions == 1

    def test_disabled_instance_always_computes(self):
        calls = []
        cache = ResultCache()
        cache.enabled = False
        for _ in range(2):
            cache.get_or_compute(("k",), lambda: calls.append(1))
        assert len(calls) == 2
        assert cache.events == []

    def test_global_disable(self):
        calls = []
        cache = ResultCache()
        rc_mod.set_enabled(False)
        try:
            for _ in range(2):
                cache.get_or_compute(("k",), lambda: calls.append(1))
        finally:
            rc_mod.set_enabled(True)
        assert len(calls) == 2

    def test_clear_reports_per_layer(self, tmp_path):
        cache = ResultCache(disk_root=tmp_path)
        cache.get_or_compute(("k",), lambda: 7)
        assert cache.clear() == {"memory": 1, "disk": 1}

    def test_stats_hit_rate(self):
        cache = ResultCache()
        cache.get_or_compute(("k",), lambda: 1)
        cache.get_or_compute(("k",), lambda: 1)
        cache.get_or_compute(("k",), lambda: 1)
        assert cache.stats().hit_rate == pytest.approx(2 / 3)


class TestPolicySelection:
    """ResultCache policy wiring: constructor, env var, snapshots."""

    def test_default_policy_is_lru(self):
        cache = ResultCache()
        assert cache.policy == "lru"
        assert cache.stats().policy == "lru"
        assert cache.memory.name == "lru"

    @pytest.mark.parametrize("name", ["lru", "lfu", "2q", "arc"])
    def test_explicit_policy_reaches_memory_tier(self, name):
        cache = ResultCache(policy=name)
        assert cache.policy == name
        assert cache.memory.name == name
        cache.get_or_compute(("k",), lambda: 1)
        cache.get_or_compute(("k",), lambda: 1)
        assert cache.stats().hits == 1
        assert cache.memory.counters()["policy"] == name

    def test_policy_alias_normalized(self):
        assert ResultCache(policy="TwoQ").policy == "2q"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            ResultCache(policy="belady")

    def test_env_var_selects_default_cache_policy(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_POLICY", "arc")
        rc_mod.reset_default_cache()
        try:
            assert rc_mod.default_cache().policy == "arc"
        finally:
            monkeypatch.delenv("REPRO_CACHE_POLICY")
            rc_mod.reset_default_cache()

    def test_configure_policy_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_POLICY", "lfu")
        try:
            rc_mod.configure(policy="2q")
            assert rc_mod.default_cache().policy == "2q"
        finally:
            monkeypatch.delenv("REPRO_CACHE_POLICY")
            rc_mod.reset_default_cache()

    def test_eviction_results_identical_across_policies(self, design_space):
        profile = get_profile("gcc")
        chunks = [design_space[i:i + 8] for i in range(0, 64, 8)]
        sums = set()
        for name in ("lru", "lfu", "2q", "arc"):
            store = ResultCache(max_entries=2, policy=name)
            total = 0.0
            for _ in range(2):
                for chunk in chunks:
                    total += float(sweep_design_space(
                        chunk, profile, cache=store).sum())
            assert store.stats().memory_evictions > 0
            sums.add(total)
        assert len(sums) == 1, "policies must not change sweep results"


class TestNamespaceBreakdown:
    def test_by_namespace_counts(self):
        cache = ResultCache(namespace="tenant-a")
        cache.get_or_compute(("k",), lambda: 1)
        cache.get_or_compute(("k",), lambda: 1)
        assert cache.stats_by_namespace() == {
            "tenant-a": {"hits": 1, "misses": 1}}

    def test_default_namespace_bucket(self):
        cache = ResultCache()
        cache.get_or_compute(("k",), lambda: 1)
        assert cache.stats_by_namespace() == {
            "(default)": {"hits": 0, "misses": 1}}

    def test_snapshot_includes_policy_and_namespaces(self):
        rc_mod.reset_default_cache()
        try:
            rc_mod.configure(policy="lfu")
            cache = rc_mod.default_cache()
            cache.get_or_compute(("k",), lambda: 1)
            cache.get_or_compute(("k",), lambda: 1)
            snap = rc_mod.cache_snapshot()
            assert snap["policy"] == "lfu"
            assert snap["by_namespace"] == {
                "(default)": {"hits": 1, "misses": 1}}
            assert snap["policy_counters"]["policy"] == "lfu"
            assert snap["policy_counters"]["hits"] == 1
        finally:
            rc_mod.reset_default_cache()


class TestSweepCaching:
    """End-to-end: sweep results identical with caching off, cold, and warm."""

    def test_sweep_cache_bit_identity(self, design_space, tmp_path):
        profile = get_profile("parser")
        subset = design_space[:96]
        off = sweep_design_space(subset, profile)
        store = ResultCache(disk_root=tmp_path)
        cold = sweep_design_space(subset, profile, cache=store)
        warm = sweep_design_space(subset, profile, cache=store)
        assert np.array_equal(off, cold)
        assert np.array_equal(off, warm)
        assert store.stats().hits == 1

    def test_different_profile_misses(self, design_space):
        store = ResultCache()
        subset = design_space[:8]
        sweep_design_space(subset, get_profile("gcc"), cache=store)
        sweep_design_space(subset, get_profile("mcf"), cache=store)
        assert store.stats().hits == 0

    def test_cached_result_immune_to_caller_mutation(self, design_space):
        store = ResultCache()
        subset = design_space[:8]
        first = sweep_design_space(subset, profile := get_profile("gcc"), cache=store)
        first[:] = -1.0
        second = sweep_design_space(subset, profile, cache=store)
        assert not np.array_equal(first, second)
        assert (second > 0).all()


class TestRateSweepCachingEquivalence:
    """End-to-end acceptance: run_rate_sweep is identical on/off/warm."""

    def test_rate_sweep_identical_on_off_warm(self, space_dataset):
        from repro.core import model_builders, run_rate_sweep
        from repro.ml.preprocess import raw_matrix_cache

        space = space_dataset("gzip")
        builders = model_builders(("LR-B", "LR-E"), seed=0)

        def sweep():
            return run_rate_sweep(space, builders, [0.01, 0.02],
                                  np.random.default_rng(0), n_cv_reps=2)

        rc_mod.set_enabled(False)
        try:
            off = sweep()
        finally:
            rc_mod.set_enabled(True)
        raw_matrix_cache().clear()
        cold = sweep()
        hits_before = raw_matrix_cache().hits
        warm = sweep()
        assert raw_matrix_cache().hits > hits_before, "warm rerun must hit"

        for a, b in zip(off, cold):
            assert a.true_errors() == b.true_errors()
            assert a.estimated_errors() == b.estimated_errors()
        for a, b in zip(cold, warm):
            assert a.true_errors() == b.true_errors()
            assert a.estimated_errors() == b.estimated_errors()
