"""Property-based tests for cache-key fingerprint stability.

Two properties carry the whole caching design: a dict's fingerprint must not
depend on insertion order (the same sweep request built two ways must hit the
same cache entry), and any change to any leaf value must change the digest
(a different request must never alias an existing entry).

Runs under hypothesis when installed; falls back to a fixed seeded-random
sweep otherwise, so the properties stay tested in minimal environments.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cache.fingerprint import stable_fingerprint

try:
    from hypothesis import given, settings, strategies as st

    def seeds(n_examples: int = 50, max_seed: int = 10**6):
        """Feed the test a shrinkable integer seed via hypothesis."""

        def deco(fn):
            return settings(max_examples=n_examples, deadline=None)(
                given(st.integers(0, max_seed))(fn)
            )

        return deco

except ImportError:  # pragma: no cover - exercised only without hypothesis

    def seeds(n_examples: int = 50, max_seed: int = 10**6):
        """Fallback: a fixed, seeded sweep of random example seeds."""
        picker = random.Random(20260806)
        chosen = [picker.randrange(max_seed + 1) for _ in range(n_examples)]

        def deco(fn):
            return pytest.mark.parametrize("seed", chosen)(fn)

        return deco


def _random_leaf(rng: np.random.Generator):
    """One random fingerprintable scalar."""
    kind = rng.integers(0, 6)
    if kind == 0:
        return None
    if kind == 1:
        return bool(rng.integers(0, 2))
    if kind == 2:
        return int(rng.integers(-(10**12), 10**12))
    if kind == 3:
        return float(rng.normal() * 10.0 ** rng.integers(-6, 7))
    if kind == 4:
        n = int(rng.integers(0, 12))
        return "".join(chr(97 + int(c)) for c in rng.integers(0, 26, size=n))
    return bytes(rng.integers(0, 256, size=int(rng.integers(0, 8))).tolist())


def _random_value(rng: np.random.Generator, depth: int = 0):
    """A random nested value tree from the fingerprintable closure."""
    if depth >= 3 or rng.random() < 0.4:
        return _random_leaf(rng)
    kind = rng.integers(0, 4)
    n = int(rng.integers(0, 5))
    if kind == 0:
        return [_random_value(rng, depth + 1) for _ in range(n)]
    if kind == 1:
        return tuple(_random_value(rng, depth + 1) for _ in range(n))
    if kind == 2:
        return rng.normal(size=(int(rng.integers(1, 4)), int(rng.integers(1, 4))))
    return {f"k{i}": _random_value(rng, depth + 1) for i in range(n)}


def _random_dict(rng: np.random.Generator, min_size: int = 2) -> dict:
    n = int(rng.integers(min_size, 8))
    return {f"key{i}": _random_value(rng, depth=1) for i in range(n)}


class TestPermutationInvariance:
    @seeds()
    def test_dict_insertion_order_is_irrelevant(self, seed):
        rng = np.random.default_rng(seed)
        d = _random_dict(rng)
        items = list(d.items())
        baseline = stable_fingerprint(d)
        for _ in range(3):
            shuffled = list(items)
            rng.shuffle(shuffled)
            assert stable_fingerprint(dict(shuffled)) == baseline

    @seeds(n_examples=25)
    def test_nested_dict_permutation_invariance(self, seed):
        rng = np.random.default_rng(seed)
        inner = _random_dict(rng)
        outer = {"config": inner, "budget": 1000, "app": "gcc"}
        reversed_outer = dict(reversed(list(outer.items())))
        reversed_outer["config"] = dict(reversed(list(inner.items())))
        assert stable_fingerprint(outer) == stable_fingerprint(reversed_outer)

    @seeds(n_examples=25)
    def test_sequences_are_order_sensitive(self, seed):
        # The flip side: lists/tuples encode position, so a permuted
        # sequence is a *different* value.
        rng = np.random.default_rng(seed)
        xs = [int(v) for v in rng.integers(0, 100, size=6)]
        ys = list(reversed(xs))
        if xs != ys:
            assert stable_fingerprint(xs) != stable_fingerprint(ys)

    @seeds(n_examples=25)
    def test_repeated_hashing_is_stable(self, seed):
        rng = np.random.default_rng(seed)
        value = _random_value(rng)
        assert stable_fingerprint(value) == stable_fingerprint(value)


class TestValueSensitivity:
    @seeds()
    def test_changing_one_dict_value_changes_digest(self, seed):
        rng = np.random.default_rng(seed)
        d = {f"key{i}": int(v) for i, v in enumerate(rng.integers(0, 10**9, size=5))}
        baseline = stable_fingerprint(d)
        victim = f"key{int(rng.integers(0, 5))}"
        mutated = dict(d)
        mutated[victim] = d[victim] + 1
        assert stable_fingerprint(mutated) != baseline

    @seeds()
    def test_changing_one_key_changes_digest(self, seed):
        rng = np.random.default_rng(seed)
        d = _random_dict(rng)
        victim = f"key{int(rng.integers(0, len(d)))}"
        mutated = dict(d)
        mutated["renamed"] = mutated.pop(victim)
        assert stable_fingerprint(mutated) != stable_fingerprint(d)

    @seeds()
    def test_array_perturbation_changes_digest(self, seed):
        rng = np.random.default_rng(seed)
        arr = rng.normal(size=(4, 3))
        baseline = stable_fingerprint(arr)
        bumped = arr.copy()
        bumped[tuple(rng.integers(0, s) for s in arr.shape)] += 1.0
        assert stable_fingerprint(bumped) != baseline
        # ...while dtype and layout changes also matter.
        assert stable_fingerprint(arr.astype(np.float32)) != baseline
        assert stable_fingerprint(arr.ravel()) != baseline

    @seeds(n_examples=25)
    def test_numeric_type_distinctions_hold(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 10**6))
        digests = {
            stable_fingerprint(n),
            stable_fingerprint(float(n)),
            stable_fingerprint(str(n)),
        }
        assert len(digests) == 3  # 1, 1.0, and "1" never alias

    def test_bool_and_signed_zero_distinctions(self):
        assert stable_fingerprint(True) != stable_fingerprint(1)
        assert stable_fingerprint(0.0) != stable_fingerprint(-0.0)
        # All NaN payloads canonicalize to one digest.
        assert stable_fingerprint(float("nan")) == \
            stable_fingerprint(np.float64("nan").item())
