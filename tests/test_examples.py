"""Smoke tests: every shipped example runs to completion.

Examples are the adoption surface; these tests keep them from rotting.
Each runs as a subprocess with reduced arguments where supported.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py", "applu")
        assert "true error over all 4608 configs" in out
        assert "NN-E" in out and "LR-B" in out

    def test_chronological_spec(self):
        out = _run("chronological_spec.py", "pentium-d")
        assert "Chronological Predictions - pentium-d" in out
        assert "Best linear regression" in out

    def test_detailed_simulation(self):
        out = _run("detailed_simulation.py", "gzip", "60000")
        assert "detailed: CPI" in out
        assert "SimPoint" in out

    def test_importance_analysis(self):
        out = _run("importance_analysis.py", "opteron")
        assert "standardized beta" in out
        assert "sensitivity importance" in out

    def test_sampled_dse(self):
        out = _run("sampled_dse_microarch.py", "applu")
        assert "Model Error - applu" in out
        assert "regret" in out
