"""Shared fixtures: cached design-space sweeps, traces, and archives.

Heavy artifacts (the 4608-config space, simulated cycle vectors, synthetic
traces, announcement archives) are computed once per session and shared
across test modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator import (
    enumerate_design_space,
    design_space_dataset,
    generate_trace,
    get_profile,
    sweep_design_space,
)
from repro.specdata import generate_family_records

#: Seed used by every deterministic test artifact.
TEST_SEED = 1234


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the checked-in golden regression files from the "
             "current code instead of comparing against them",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(TEST_SEED)


@pytest.fixture(scope="session")
def design_space():
    """All 4608 Table-1 configurations."""
    return list(enumerate_design_space())


@pytest.fixture(scope="session")
def cycles_cache(design_space):
    """Factory: app name -> simulated cycles over the full space (cached)."""
    cache: dict[str, np.ndarray] = {}

    def get(app: str) -> np.ndarray:
        if app not in cache:
            cache[app] = sweep_design_space(design_space, get_profile(app))
        return cache[app]

    return get


@pytest.fixture(scope="session")
def space_dataset(design_space, cycles_cache):
    """Factory: app name -> full design-space ML dataset (cached)."""
    cache = {}

    def get(app: str):
        if app not in cache:
            cache[app] = design_space_dataset(design_space, cycles_cache(app))
        return cache[app]

    return get


@pytest.fixture(scope="session")
def trace_cache():
    """Factory: (app, n) -> synthetic trace (cached)."""
    cache = {}

    def get(app: str, n: int = 60_000):
        key = (app, n)
        if key not in cache:
            cache[key] = generate_trace(get_profile(app), n, seed=TEST_SEED)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def spec_archive():
    """Factory: family -> generated announcement records (cached)."""
    cache = {}

    def get(family: str):
        if family not in cache:
            cache[family] = generate_family_records(family, seed=TEST_SEED)
        return cache[family]

    return get
