"""Tests for validation gates and the model-degradation ladder."""

import numpy as np
import pytest

from repro.core.models import model_builders
from repro.errors import DegradationExhausted, ModelValidationError, NumericalError
from repro.ml.base import PredictiveModel
from repro.ml.selection import ErrorEstimate, select_model
from repro.robust import (
    DEFAULT_RUNGS,
    MEAN_BASELINE,
    DegradationLadder,
    MeanBaselineModel,
    ValidationGate,
    default_ladder,
)
from repro.specdata.schema import records_to_dataset


@pytest.fixture(scope="module")
def train(spec_archive):
    recs = [r for r in spec_archive("opteron-2") if r.year == 2005]
    return records_to_dataset(recs)


class _ExplodingModel(PredictiveModel):
    """Fails training with a typed numerical error (a divergent NN stand-in)."""

    name = "exploder"

    def fit(self, data):
        raise NumericalError("synthetic divergence", cause="nn-divergence")

    def predict(self, data):  # pragma: no cover - fit always raises
        raise AssertionError("unreachable")


class _NanModel(PredictiveModel):
    """Trains 'successfully' but predicts NaN — the gate's reason to exist."""

    name = "nan-model"

    def fit(self, data):
        return self

    def predict(self, data):
        return np.full(data.n_records, np.nan)


class TestValidationGate:
    def test_rejects_bad_statistic(self):
        with pytest.raises(ValueError, match="statistic"):
            ValidationGate(statistic="median")

    def test_estimate_checks(self):
        gate = ValidationGate(max_holdout_error=50.0)
        ok = ErrorEstimate("m", (3.0, 4.0))
        assert gate.check_estimate(ok).passed
        too_big = ErrorEstimate("m", (3.0, 80.0))
        assert not gate.check_estimate(too_big).passed
        nan = ErrorEstimate("m", (float("nan"),))
        assert not gate.check_estimate(nan).passed

    def test_none_bound_requires_finiteness_only(self):
        gate = ValidationGate(max_holdout_error=None)
        assert gate.check_estimate(ErrorEstimate("m", (1e9,))).passed
        assert not gate.check_estimate(ErrorEstimate("m", (float("inf"),))).passed

    def test_finite_prediction_gate(self, train):
        gate = ValidationGate()
        good = MeanBaselineModel().fit(train)
        assert gate.check(good, train).passed
        bad = _NanModel().fit(train)
        result = gate.check(bad, train)
        assert not result.passed
        assert "non-finite" in result.failures()[0]

    def test_passing_model_with_estimate(self, train):
        gate = ValidationGate(max_holdout_error=500.0)
        model = MeanBaselineModel().fit(train)
        result = gate.check(model, train, ErrorEstimate("m", (10.0,)))
        assert result.passed and len(result.checks) == 2


class TestMeanBaseline:
    def test_predicts_train_mean(self, train):
        model = MeanBaselineModel().fit(train)
        preds = model.predict(train)
        assert np.allclose(preds, float(np.mean(train.target)))

    def test_requires_fit(self, train):
        with pytest.raises(RuntimeError):
            MeanBaselineModel().predict(train)


class TestDegradationLadder:
    def test_default_ladder_shape(self):
        ladder = default_ladder(seed=0)
        assert ladder.rungs == DEFAULT_RUNGS
        assert ladder.rungs[-1] == MEAN_BASELINE
        assert callable(ladder.builder_for("LR-S"))
        assert ladder.builder_for(MEAN_BASELINE) is MeanBaselineModel

    def test_missing_builder_rejected(self):
        with pytest.raises(ValueError, match="no builder"):
            DegradationLadder(rungs=("LR-S", MEAN_BASELINE), builders={})

    def test_clean_primary_is_accepted_undegraded(self, train, rng):
        ladder = default_ladder(seed=3)
        builders = model_builders(("LR-S",), seed=3)
        model, estimate, walk = ladder.fit_model(
            "LR-S", builders["LR-S"], train, rng, n_cv_reps=2)
        assert walk.deployed == "LR-S" and not walk.degraded
        assert [s.outcome for s in walk.steps] == ["accepted"]
        assert np.isfinite(model.predict(train)).all()
        assert np.isfinite(estimate.max)

    def test_numerical_failure_degrades(self, train, rng):
        ladder = DegradationLadder(
            rungs=("LR-B", MEAN_BASELINE),
            builders=dict(model_builders(("LR-B",), seed=3)))
        model, _, walk = ladder.fit_model(
            "exploder", _ExplodingModel, train, rng, n_cv_reps=2)
        assert walk.degraded and walk.deployed == "LR-B"
        assert walk.steps[0].outcome == "numerical-failure"
        assert "nn-divergence" in walk.steps[0].detail
        assert np.isfinite(model.predict(train)).all()

    def test_degrades_to_mean_baseline_floor(self, train, rng):
        # No intermediate rungs: the exploder must land on the floor.
        ladder = DegradationLadder(rungs=(MEAN_BASELINE,), builders={})
        model, _, walk = ladder.fit_model(
            "exploder", _ExplodingModel, train, rng, n_cv_reps=2)
        assert walk.deployed == MEAN_BASELINE
        assert isinstance(model, MeanBaselineModel)
        assert np.isfinite(model.predict(train)).all()

    def test_gate_failure_degrades(self, train, rng):
        # An impossible bound fails every real model; the floor (gated on
        # finiteness only) still deploys.
        ladder = DegradationLadder(
            rungs=("LR-B", MEAN_BASELINE),
            builders=dict(model_builders(("LR-B",), seed=3)),
            gate=ValidationGate(max_holdout_error=1e-12))
        builders = model_builders(("LR-S",), seed=3)
        model, _, walk = ladder.fit_model(
            "LR-S", builders["LR-S"], train, rng, n_cv_reps=2)
        assert walk.deployed == MEAN_BASELINE
        assert [s.outcome for s in walk.steps] == [
            "gate-failed", "gate-failed", "accepted"]

    def test_exhaustion_raises_typed_error(self, train, rng):
        ladder = DegradationLadder(rungs=("bad",),
                                   builders={"bad": _NanModel})
        with pytest.raises(DegradationExhausted) as ei:
            ladder.fit_model("bad", _NanModel, train, rng, n_cv_reps=2)
        assert ei.value.exit_code == 10
        assert ei.value.failures  # every step recorded
        assert isinstance(ei.value, ModelValidationError)

    def test_requested_rung_not_retried(self):
        ladder = default_ladder(seed=0)
        assert "NN-Q" not in ladder._fallbacks("NN-Q")
        # Degradation continues strictly below the requested rung.
        assert ladder._fallbacks("LR-S") == ["LR-E", MEAN_BASELINE]
        # A non-rung label gets the whole ladder.
        assert ladder._fallbacks("LR-B") == list(DEFAULT_RUNGS)


class TestSelectModelGate:
    def test_gate_excludes_absurd_candidate(self, train, rng):
        builders = dict(model_builders(("LR-S", "LR-B"), seed=3))
        builders["nan"] = _NanModel
        winner, estimates = select_model(
            builders, train, rng, n_reps=2,
            gate=ValidationGate(max_holdout_error=500.0))
        assert winner in ("LR-S", "LR-B")
        assert set(estimates) == set(builders)  # all estimates still reported

    def test_all_excluded_raises(self, train, rng):
        with pytest.raises(ModelValidationError) as ei:
            select_model({"nan": _NanModel}, train, rng, n_reps=2,
                         gate=ValidationGate())
        assert ei.value.exit_code == 9

    def test_no_gate_matches_legacy_behaviour(self, train, rng):
        builders = dict(model_builders(("LR-S", "LR-B"), seed=3))
        a, _ = select_model(builders, train, np.random.default_rng(7), n_reps=2)
        b, _ = select_model(builders, train, np.random.default_rng(7), n_reps=2,
                            gate=ValidationGate(max_holdout_error=None))
        assert a == b
