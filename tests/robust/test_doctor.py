"""Tests for the ``repro doctor`` environment self-check."""

import io

from repro.cli import main
from repro.robust import run_doctor
from repro.robust.doctor import DoctorCheck, DoctorReport


class TestRunDoctor:
    def test_healthy_environment_passes(self):
        report = run_doctor()
        assert report.ok
        assert report.exit_code == 0
        names = [c.name for c in report.checks]
        assert {"python", "numpy", "cache-dir", "shared-memory",
                "seed-repro"} <= set(names)

    def test_render_is_readable(self):
        report = run_doctor()
        buf = io.StringIO()
        text = report.render(buf)
        assert buf.getvalue() == text
        assert text.startswith("repro doctor")
        assert "all checks passed" in text
        for check in report.checks:
            assert check.name in text

    def test_failure_reported_with_nonzero_exit(self):
        report = DoctorReport(checks=[
            DoctorCheck("good", True, "fine"),
            DoctorCheck("bad", False, "broken thing"),
        ])
        assert not report.ok
        assert report.exit_code == 1
        text = report.render(io.StringIO())
        assert "FAIL" in text and "broken thing" in text
        assert "1 of 2 check(s) FAILED" in text

    def test_unwritable_cache_dir_fails(self, tmp_path, monkeypatch):
        target = tmp_path / "file-not-dir"
        target.write_text("occupied")  # mkdir under a file must fail
        monkeypatch.setenv("REPRO_CACHE_DIR", str(target / "sub"))
        report = run_doctor()
        cache_check = next(c for c in report.checks if c.name == "cache-dir")
        assert not cache_check.passed
        assert report.exit_code == 1

    def test_crashing_probe_becomes_failed_check(self, monkeypatch):
        import repro.robust.doctor as doctor_mod

        def boom():
            raise RuntimeError("probe exploded")

        boom.__name__ = "_check_numpy"
        monkeypatch.setattr(doctor_mod, "_CHECKS", (boom,))
        report = doctor_mod.run_doctor()
        assert not report.ok
        assert report.checks[0].name == "numpy"
        assert "probe exploded" in report.checks[0].detail


class TestServiceProbes:
    def test_new_probes_present_and_healthy(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPOOL_DIR", raising=False)
        report = run_doctor()
        names = [c.name for c in report.checks]
        assert {"spool-dir", "fd-headroom", "mp-start-method",
                "stale-leases"} <= set(names)
        assert report.ok

    def test_spool_dir_unset_is_fine(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPOOL_DIR", raising=False)
        check = next(c for c in run_doctor().checks if c.name == "spool-dir")
        assert check.passed
        assert "unset" in check.detail

    def test_spool_dir_probed_when_set(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "spool"))
        check = next(c for c in run_doctor().checks if c.name == "spool-dir")
        assert "flock" in check.detail
        from repro.util.locking import FileLock

        assert check.passed == FileLock.enforced

    def test_unwritable_spool_dir_fails(self, tmp_path, monkeypatch):
        blocker = tmp_path / "occupied"
        blocker.write_text("not a directory")
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(blocker / "spool"))
        check = next(c for c in run_doctor().checks if c.name == "spool-dir")
        assert not check.passed
        assert "not writable" in check.detail

    def test_stale_leases_reported(self, tmp_path, monkeypatch):
        from repro.service import JobSpec, JobSpool, SpoolConfig

        root = tmp_path / "spool"
        spool = JobSpool.ensure(root, SpoolConfig(lease_ttl=0.001))
        spool.submit(JobSpec(kind="sweep", app="gcc", stop=4))
        spool.claim("dead-worker", now=0.0)  # long expired
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(root))
        check = next(c for c in run_doctor().checks if c.name == "stale-leases")
        assert check.passed  # informational: re-dispatch handles it
        assert "1 job(s) abandoned" in check.detail

    def test_corrupt_spool_fails_the_probe(self, tmp_path, monkeypatch):
        from repro.service import JobSpool

        root = tmp_path / "spool"
        spool = JobSpool.ensure(root)
        spool.log_path.write_text("garbage\n{}\n")
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(root))
        check = next(c for c in run_doctor().checks if c.name == "stale-leases")
        assert not check.passed
        assert "spool unreadable" in check.detail


class TestSpoolBloatProbe:
    def probe(self):
        return next(c for c in run_doctor().checks if c.name == "spool-bloat")

    def test_unset_spool_dir_is_fine(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPOOL_DIR", raising=False)
        check = self.probe()
        assert check.passed
        assert "no spool" in check.detail

    def test_lean_spool_passes_with_detail(self, tmp_path, monkeypatch):
        from repro.service import JobSpec, JobSpool

        root = tmp_path / "spool"
        JobSpool.ensure(root).submit(JobSpec(kind="sweep", app="gcc", stop=4))
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(root))
        check = self.probe()
        assert check.passed
        assert "1 event line(s)" in check.detail
        assert "never compacted" in check.detail

    def test_compacted_spool_reports_generation(self, tmp_path, monkeypatch):
        from repro.service import JobSpec, JobSpool, compact

        root = tmp_path / "spool"
        spool = JobSpool.ensure(root)
        spool.submit(JobSpec(kind="sweep", app="gcc", stop=4))
        compact(spool)
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(root))
        check = self.probe()
        assert check.passed
        assert "snapshot g1" in check.detail

    def test_bloated_log_fails_with_the_fix(self, tmp_path, monkeypatch):
        import repro.robust.doctor as doctor_mod
        from repro.service import JobSpec, JobSpool

        root = tmp_path / "spool"
        spool = JobSpool.ensure(root)
        for i in range(3):
            spool.submit(JobSpec(kind="sweep", app="gcc", start=i, stop=i + 1))
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(root))
        monkeypatch.setattr(doctor_mod, "_SPOOL_BLOAT_EVENTS", 2)
        check = self.probe()
        assert not check.passed
        assert "repro spool compact" in check.detail

    def test_unreadable_snapshot_fails_pointing_at_verify(
            self, tmp_path, monkeypatch):
        from repro.service import JobSpool

        root = tmp_path / "spool"
        JobSpool.ensure(root)
        (root / "spoolsnap.json").write_text("not json")
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(root))
        check = self.probe()
        assert not check.passed
        assert "repro spool verify" in check.detail


class TestObservabilityProbes:
    def test_probes_present_and_healthy_when_unconfigured(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPOOL_DIR", raising=False)
        monkeypatch.delenv("REPRO_STATUS_FILE", raising=False)
        report = run_doctor()
        names = [c.name for c in report.checks]
        assert {"status-file", "shard-snapshots", "clock-skew"} <= set(names)
        assert report.ok

    def test_status_file_writable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STATUS_FILE",
                           str(tmp_path / "svc" / "status.json"))
        check = next(c for c in run_doctor().checks
                     if c.name == "status-file")
        assert check.passed
        assert "writable" in check.detail

    def test_status_file_unwritable_fails(self, tmp_path, monkeypatch):
        blocker = tmp_path / "occupied"
        blocker.write_text("not a directory")
        monkeypatch.setenv("REPRO_STATUS_FILE",
                           str(blocker / "sub" / "status.json"))
        check = next(c for c in run_doctor().checks
                     if c.name == "status-file")
        assert not check.passed
        assert "not writable" in check.detail

    def _live_shard_spool(self, tmp_path):
        from repro.service import JobSpool

        root = tmp_path / "spool"
        spool = JobSpool.ensure(root)
        spool.heartbeat("w0")
        return root, spool

    def test_live_shard_without_snapshot_is_stale(self, tmp_path, monkeypatch):
        root, _ = self._live_shard_spool(tmp_path)
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(root))
        check = next(c for c in run_doctor().checks
                     if c.name == "shard-snapshots")
        assert not check.passed
        assert "no snapshot" in check.detail

    def test_fresh_snapshot_passes(self, tmp_path, monkeypatch):
        import json
        import time

        root, _ = self._live_shard_spool(tmp_path)
        mdir = root / "metrics"
        mdir.mkdir()
        (mdir / "w0.json").write_text(json.dumps({"t": time.time()}))
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(root))
        check = next(c for c in run_doctor().checks
                     if c.name == "shard-snapshots")
        assert check.passed
        assert "snapshots current" in check.detail

    def test_snapshot_far_behind_heartbeat_fails(self, tmp_path, monkeypatch):
        import json
        import time

        root, _ = self._live_shard_spool(tmp_path)
        mdir = root / "metrics"
        mdir.mkdir()
        (mdir / "w0.json").write_text(json.dumps({"t": time.time() - 300.0}))
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(root))
        check = next(c for c in run_doctor().checks
                     if c.name == "shard-snapshots")
        assert not check.passed
        assert "behind" in check.detail

    def test_fresh_heartbeat_from_exited_shard_not_live(
            self, tmp_path, monkeypatch):
        """A just-drained service leaves recent heartbeats behind; a shard
        whose process no longer exists must not be probed for staleness."""
        import json

        root, spool = self._live_shard_spool(tmp_path)
        hb_path = root / "hb" / "w0.json"
        hb = json.loads(hb_path.read_text())
        hb["pid"] = 2 ** 22 + 1  # beyond linux's default pid_max
        hb_path.write_text(json.dumps(hb))
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(root))
        check = next(c for c in run_doctor().checks
                     if c.name == "shard-snapshots")
        assert check.passed
        assert "no live shards" in check.detail

    def _skewed_spool(self, tmp_path, skew):
        import json
        import time

        root = tmp_path / "spool"
        obs = root / "obs"
        obs.mkdir(parents=True)
        now = time.time()
        with open(root / "spool.jsonl", "w") as fh:
            fh.write(json.dumps({"ev": "submit", "id": "j1", "t": now - 10,
                                 "trace_id": "j1",
                                 "spec": {"kind": "sweep"}}) + "\n")
            fh.write(json.dumps({"ev": "lease", "id": "j1", "t": now,
                                 "worker": "w0"}) + "\n")
        (obs / "trace.w0.jsonl").write_text(json.dumps({
            "schema": "repro-trace/1", "kind": "span", "span_id": 1,
            "parent_id": None, "name": "job.execute",
            "t_wall": now - skew, "t_start": 0.0, "duration_s": 1.0,
            "status": "ok", "error": None, "trace_id": "j1", "attrs": {},
        }) + "\n")
        return root

    def test_clock_skew_within_bounds_passes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPOOL_DIR",
                           str(self._skewed_spool(tmp_path, skew=-0.5)))
        check = next(c for c in run_doctor().checks if c.name == "clock-skew")
        assert check.passed
        assert "1 span/lease pair(s)" in check.detail

    def test_execute_span_before_lease_fails(self, tmp_path, monkeypatch):
        # span opens 2 minutes before the lease that dispatched it: the
        # shard's clock disagrees with the submitter's beyond the bound
        monkeypatch.setenv("REPRO_SPOOL_DIR",
                           str(self._skewed_spool(tmp_path, skew=120.0)))
        check = next(c for c in run_doctor().checks if c.name == "clock-skew")
        assert not check.passed
        assert "clocks disagree" in check.detail


class TestDoctorCli:
    def test_exit_zero_when_healthy(self, capsys):
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "repro doctor" in out
        assert "all checks passed" in out

    def test_exit_nonzero_on_failure(self, monkeypatch, capsys):
        import repro.robust.doctor as doctor_mod

        monkeypatch.setattr(
            doctor_mod, "_CHECKS",
            (lambda: DoctorCheck("synthetic", False, "induced failure"),))
        assert main(["doctor"]) == 1
        assert "induced failure" in capsys.readouterr().out
