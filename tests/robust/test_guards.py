"""Tests for the ingest guards: row-level quarantine and structured reports."""

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import DataIntegrityError
from repro.robust import (
    QUARANTINE_SCHEMA,
    quarantine_design_responses,
    read_records_checked,
    validate_records,
)
from repro.specdata.io import write_records_csv


@pytest.fixture(scope="module")
def records(spec_archive):
    return spec_archive("opteron-2")


class TestValidateRecords:
    def test_clean_records_pass_untouched(self, records):
        clean, report = validate_records(records, source="clean")
        assert clean == list(records)
        assert report.ok and report.n_quarantined == 0
        assert report.n_clean == report.n_total == len(records)

    def test_nan_parameter_quarantined(self, records):
        dirty = list(records)
        dirty[3] = dataclasses.replace(dirty[3], processor_speed=float("nan"))
        clean, report = validate_records(dirty)
        assert len(clean) == len(records) - 1
        assert report.rows[0].index == 3
        assert report.rows[0].reason == "non-finite"
        assert "processor_speed" in report.rows[0].detail

    def test_inf_rating_quarantined(self, records):
        dirty = list(records)
        dirty[0] = dataclasses.replace(dirty[0], specfp_rate=float("inf"))
        _, report = validate_records(dirty)
        assert report.reasons() == {"non-finite": 1}

    def test_out_of_range_year_quarantined(self, records):
        dirty = list(records)
        dirty[1] = dataclasses.replace(dirty[1], year=1987)
        _, report = validate_records(dirty)
        assert report.reasons() == {"out-of-range": 1}
        assert "year=1987" in report.rows[0].detail

    def test_absurd_rating_magnitude_quarantined(self, records):
        dirty = list(records)
        dirty[2] = dataclasses.replace(dirty[2], specint_rate=1e9)
        _, report = validate_records(dirty)
        assert report.reasons() == {"out-of-range": 1}

    def test_conflicting_duplicate_quarantined(self, records):
        dirty = list(records) + [
            dataclasses.replace(records[4],
                                specint_rate=records[4].specint_rate * 2)
        ]
        clean, report = validate_records(dirty)
        assert report.reasons() == {"conflicting-duplicate": 1}
        assert report.rows[0].index == len(records)  # the appended row loses
        assert records[4] in clean                   # the original wins

    def test_exact_duplicate_passes(self, records):
        dirty = list(records) + [records[0]]
        clean, report = validate_records(dirty)
        assert report.ok
        assert len(clean) == len(records) + 1

    def test_all_bad_raises_with_report(self, records):
        dirty = [dataclasses.replace(r, processor_speed=float("nan"))
                 for r in records[:5]]
        with pytest.raises(DataIntegrityError, match="every row failed") as ei:
            validate_records(dirty)
        assert ei.value.report.n_quarantined == 5
        assert ei.value.exit_code == 7

    def test_fraction_tolerance_enforced(self, records):
        dirty = list(records[:10])
        for i in range(4):
            dirty[i] = dataclasses.replace(dirty[i], l2_size=float("nan"))
        # 40% quarantined: fine at the default 50%, fatal at 25%.
        clean, _ = validate_records(dirty)
        assert len(clean) == 6
        with pytest.raises(DataIntegrityError, match="exceeds tolerance"):
            validate_records(dirty, max_quarantine_fraction=0.25)

    def test_is_a_value_error(self, records):
        # Legacy callers catch ValueError; the typed error must oblige.
        dirty = [dataclasses.replace(records[0], l2_size=float("nan"))]
        with pytest.raises(ValueError):
            validate_records(dirty)


class TestReadRecordsChecked:
    @pytest.fixture
    def csv_path(self, records, tmp_path):
        path = tmp_path / "records.csv"
        write_records_csv(records, path)
        return path

    def test_clean_roundtrip(self, records, csv_path):
        got, report = read_records_checked(csv_path)
        assert got == list(records)
        assert report.ok

    def test_malformed_row_quarantined_not_fatal(self, records, csv_path):
        lines = csv_path.read_text().splitlines()
        lines[2] = lines[2].replace(",", ",garbage", 1)
        csv_path.write_text("\n".join(lines) + "\n")
        got, report = read_records_checked(csv_path)
        assert len(got) == len(records) - 1
        assert report.reasons() == {"parse-error": 1}
        assert report.rows[0].index == 1  # 0-based data-row index

    def test_missing_column_fatal(self, csv_path):
        lines = csv_path.read_text().splitlines()
        header = lines[0].split(",")
        drop = header.index("specint_rate")
        rewritten = [",".join(v for i, v in enumerate(line.split(","))
                              if i != drop) for line in lines]
        csv_path.write_text("\n".join(rewritten) + "\n")
        with pytest.raises(DataIntegrityError, match="missing columns"):
            read_records_checked(csv_path)

    def test_missing_file_fatal(self, tmp_path):
        with pytest.raises(DataIntegrityError, match="cannot read"):
            read_records_checked(tmp_path / "nope.csv")

    def test_header_only_fatal(self, csv_path, tmp_path):
        out = tmp_path / "empty.csv"
        out.write_text(csv_path.read_text().splitlines()[0] + "\n")
        with pytest.raises(DataIntegrityError, match="no data rows"):
            read_records_checked(out)

    def test_jsonl_report_written(self, records, csv_path, tmp_path):
        lines = csv_path.read_text().splitlines()
        lines[1] = lines[1].replace(",", ",junk", 1)
        csv_path.write_text("\n".join(lines) + "\n")
        report_path = tmp_path / "quarantine.jsonl"
        _, report = read_records_checked(csv_path, report_path=report_path)
        entries = [json.loads(ln) for ln in report_path.read_text().splitlines()]
        assert entries[0]["kind"] == "report"
        assert entries[0]["schema"] == QUARANTINE_SCHEMA
        assert entries[0]["n_quarantined"] == report.n_quarantined == 1
        assert entries[1]["kind"] == "row"
        assert entries[1]["reason"] == "parse-error"

    def test_report_written_even_when_aborting(self, records, tmp_path):
        path = tmp_path / "allbad.csv"
        bad = [dataclasses.replace(r, specint_rate=float("inf"))
               for r in records[:3]]
        write_records_csv(bad, path)
        report_path = tmp_path / "q.jsonl"
        with pytest.raises(DataIntegrityError):
            read_records_checked(path, report_path=report_path)
        assert report_path.exists()
        head = json.loads(report_path.read_text().splitlines()[0])
        assert head["n_quarantined"] == 3


class TestQuarantineDesignResponses:
    def test_clean_passthrough(self):
        resp = np.linspace(1.0, 2.0, 10)
        clean, keep, report = quarantine_design_responses(resp)
        assert np.array_equal(clean, resp)
        assert keep.all() and report.ok

    def test_nan_responses_masked(self):
        resp = np.array([1.0, np.nan, 3.0, np.inf, 5.0])
        clean, keep, report = quarantine_design_responses(resp)
        assert np.array_equal(clean, [1.0, 3.0, 5.0])
        assert np.array_equal(keep, [True, False, True, False, True])
        assert report.n_quarantined == 2
        assert report.reasons() == {"non-finite": 2}

    def test_all_bad_raises(self):
        with pytest.raises(DataIntegrityError):
            quarantine_design_responses(np.full(4, np.nan))
