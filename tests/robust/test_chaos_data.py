"""Data-corruption chaos suite: every fault class must be absorbed loudly.

The acceptance bar for the robustness layer: for each injected fault class,
either the bad rows are quarantined (with a structured report) or the run
degrades down the model ladder with observable counters — and in no case do
silent NaN predictions escape. Clean inputs stay bit-identical with the
whole robustness stack enabled.
"""

import numpy as np
import pytest

from repro.core.chronological import run_chronological
from repro.core.models import model_builders
from repro.errors import DataIntegrityError
from repro.obs.metrics import default_registry
from repro.robust import (
    DataFaultInjector,
    ValidationGate,
    default_ladder,
    read_records_checked,
    validate_records,
)
from repro.specdata.io import write_records_csv

FAMILY = "opteron-2"


@pytest.fixture(scope="module")
def records(spec_archive):
    return spec_archive(FAMILY)


@pytest.fixture(scope="module")
def injector():
    return DataFaultInjector(seed=99)


def _run(records, ladder=None, seed=5):
    return run_chronological(
        FAMILY, model_builders(("LR-S", "LR-B"), seed=3),
        records=records, rng=np.random.default_rng(seed), n_cv_reps=2,
        ladder=ladder)


class TestFaultClasses:
    """Each injected fault class is either quarantined or degraded — never silent."""

    def test_byte_corruption_quarantined(self, records, injector, tmp_path):
        path = tmp_path / "records.csv"
        write_records_csv(records, path)
        injector.corrupt_csv_file(path, n_flips=10)
        clean, report = read_records_checked(path)
        assert not report.ok
        assert "parse-error" in report.reasons() or "non-finite" in report.reasons()
        result = _run(clean)
        assert all(np.isfinite(s.mean) for s in result.errors.values())

    def test_nan_columns_quarantined(self, records, injector):
        dirty = injector.nan_columns(records, fraction=0.2)
        clean, report = validate_records(dirty)
        assert report.reasons() == {"non-finite": report.n_quarantined}
        assert report.n_quarantined > 0
        result = _run(clean)
        assert all(np.isfinite(s.mean) for s in result.errors.values())

    def test_inf_ratings_quarantined(self, records, injector):
        dirty = injector.inf_ratings(records, fraction=0.15)
        clean, report = validate_records(dirty)
        assert report.n_quarantined > 0
        assert all(np.isfinite(r.specint_rate) for r in clean)

    def test_adversarial_duplicates_quarantined(self, records, injector):
        dirty = injector.conflicting_duplicates(records, n_duplicates=3)
        clean, report = validate_records(dirty)
        assert report.reasons() == {"conflicting-duplicate": 3}
        assert len(clean) == len(records)

    def test_unquarantined_poison_degrades_not_nan(self, records):
        """A poisoned model (not a poisoned row) must walk the ladder."""
        from repro.errors import NumericalError
        from repro.ml.base import PredictiveModel
        from repro.robust import MEAN_BASELINE, DegradationLadder

        class _Diverges(PredictiveModel):
            name = "diverges"

            def fit(self, data):
                raise NumericalError("boom", cause="nn-divergence")

            def predict(self, data):  # pragma: no cover
                raise AssertionError

        before = default_registry().counter("robust.ladder.degraded").value
        ladder = DegradationLadder(
            rungs=("LR-B", MEAN_BASELINE),
            builders=dict(model_builders(("LR-B",), seed=3)))
        builders = {"diverges": _Diverges, "LR-S": model_builders(("LR-S",), seed=3)["LR-S"]}
        result = run_chronological(
            FAMILY, builders, records=records,
            rng=np.random.default_rng(5), n_cv_reps=2, ladder=ladder)
        # The divergent model degraded; every reported error is finite.
        assert result.degraded_labels() == {"diverges": "LR-B"}
        assert all(np.isfinite(s.mean) for s in result.errors.values())
        after = default_registry().counter("robust.ladder.degraded").value
        assert after > before

    def test_quarantine_counter_incremented(self, records, injector):
        before = default_registry().counter("robust.ingest.quarantined").value
        dirty = injector.nan_columns(records, fraction=0.1)
        _, report = validate_records(dirty)
        after = default_registry().counter("robust.ingest.quarantined").value
        assert after - before == report.n_quarantined > 0

    def test_total_corruption_aborts_typed(self, records, injector):
        dirty = injector.nan_columns(records, fraction=1.0)
        with pytest.raises(DataIntegrityError):
            validate_records(dirty)


class TestCleanInputBitIdentity:
    """The whole robustness stack must not move a single clean-input bit."""

    def test_ladder_on_off_identical(self, records):
        plain = _run(records, ladder=None)
        ladder = default_ladder(seed=3, gate=ValidationGate())
        robust = _run(records, ladder=ladder)
        assert plain.mean_errors() == robust.mean_errors()
        assert {k: e.per_rep for k, e in plain.estimates.items()} == \
               {k: e.per_rep for k, e in robust.estimates.items()}
        assert not robust.degraded_labels()

    def test_guarded_ingest_identical_on_clean_csv(self, records, tmp_path):
        from repro.specdata.io import read_records_csv

        path = tmp_path / "clean.csv"
        write_records_csv(records, path)
        assert read_records_checked(path)[0] == read_records_csv(path)

    def test_injector_is_deterministic(self, records):
        def hit_rows(recs):
            return [i for i, r in enumerate(recs)
                    if not np.isfinite(r.processor_speed)]

        a = DataFaultInjector(seed=7).nan_columns(records, fraction=0.2)
        b = DataFaultInjector(seed=7).nan_columns(records, fraction=0.2)
        assert hit_rows(a) == hit_rows(b) != []
        c = DataFaultInjector(seed=8).nan_columns(records, fraction=0.2)
        assert hit_rows(a) != hit_rows(c)


class TestInjectorEdges:
    def test_corrupt_needs_data_region(self, injector):
        with pytest.raises(ValueError, match="no data region"):
            injector.corrupt_csv_bytes(b"header,only\n")

    def test_fraction_validated(self, records, injector):
        with pytest.raises(ValueError, match="fraction"):
            injector.nan_columns(records, fraction=0.0)

    def test_non_numeric_field_rejected(self, records, injector):
        with pytest.raises(ValueError, match="not numeric"):
            injector.nan_columns(records, fields=("company",))

    def test_corrupt_responses(self, injector):
        resp = np.ones(100)
        out = injector.corrupt_responses(resp, fraction=0.1)
        assert np.isnan(out).sum() == 10
        assert np.isfinite(resp).all()  # input untouched
