"""Tests for the seeded disk-fault shim and the layers wired through it."""

import errno
import os

import pytest

from repro.errors import CheckpointError
from repro.robust import DiskFaultInjector, SimulatedCrash
from repro.robust import diskchaos


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    yield
    diskchaos.uninstall()


class TestInjectorDeterminism:
    def test_same_seed_same_faults(self):
        # Only the failing calls matter: a surviving on_write would need a
        # real fd, so keep the rates the only source of outcomes we record.
        inj_a = DiskFaultInjector(seed=7, p_enospc=1.0)
        inj_b = DiskFaultInjector(seed=7, p_enospc=1.0)
        for inj in (inj_a, inj_b):
            for _ in range(5):
                with pytest.raises(OSError):
                    inj.on_write(-1, b"xy")
        assert inj_a.fired == inj_b.fired == {"enospc": 5}
        assert inj_a.calls == inj_b.calls == {"write": 5}

    def test_streams_are_independent_per_op(self):
        inj = DiskFaultInjector(seed=3)
        rolls_w = [inj._roll("write", i) for i in range(20)]
        rolls_f = [inj._roll("fsync", i) for i in range(20)]
        assert rolls_w != rolls_f
        assert rolls_w == [DiskFaultInjector(seed=3)._roll("write", i)
                           for i in range(20)]


class TestDeterministicFaults:
    def test_enospc_at_exact_index(self, tmp_path):
        fd = os.open(tmp_path / "f", os.O_WRONLY | os.O_CREAT)
        try:
            with diskchaos.injected(DiskFaultInjector(enospc_at=(1,))) as inj:
                assert diskchaos.fs_write(fd, b"aa") == 2
                with pytest.raises(OSError) as ei:
                    diskchaos.fs_write(fd, b"bb")
                assert ei.value.errno == errno.ENOSPC
                assert diskchaos.fs_write(fd, b"cc") == 2
                assert inj.calls == {"write": 3}
                assert inj.fired == {"enospc": 1}
        finally:
            os.close(fd)
        assert (tmp_path / "f").read_bytes() == b"aacc"

    def test_short_write_persists_prefix(self, tmp_path):
        fd = os.open(tmp_path / "f", os.O_WRONLY | os.O_CREAT)
        try:
            with diskchaos.injected(DiskFaultInjector(short_write_at=(0,))):
                assert diskchaos.fs_write(fd, b"abcdef") == 3
        finally:
            os.close(fd)
        assert (tmp_path / "f").read_bytes() == b"abc"

    def test_torn_crash_writes_prefix_then_raises_base_exception(self, tmp_path):
        fd = os.open(tmp_path / "f", os.O_WRONLY | os.O_CREAT)
        try:
            with diskchaos.injected(DiskFaultInjector(torn_crash_at=(0,))):
                with pytest.raises(SimulatedCrash):
                    try:
                        diskchaos.fs_write(fd, b"abcdef")
                    except Exception:  # must NOT swallow the crash
                        pytest.fail("SimulatedCrash caught by except Exception")
        finally:
            os.close(fd)
        assert (tmp_path / "f").read_bytes() == b"abc"  # the tear landed

    def test_crash_after_fsync_is_durable_first(self, tmp_path):
        fd = os.open(tmp_path / "f", os.O_WRONLY | os.O_CREAT)
        try:
            os.write(fd, b"data")
            with diskchaos.injected(
                    DiskFaultInjector(crash_after_fsync_at=(0,))):
                with pytest.raises(SimulatedCrash):
                    diskchaos.fs_fsync(fd)
        finally:
            os.close(fd)
        assert (tmp_path / "f").read_bytes() == b"data"

    def test_eio_fsync(self, tmp_path):
        fd = os.open(tmp_path / "f", os.O_WRONLY | os.O_CREAT)
        try:
            with diskchaos.injected(DiskFaultInjector(eio_fsync_at=(0,))):
                with pytest.raises(OSError) as ei:
                    diskchaos.fs_fsync(fd)
                assert ei.value.errno == errno.EIO
        finally:
            os.close(fd)

    def test_rename_fault_leaves_both_paths(self, tmp_path):
        src, dst = tmp_path / "src", tmp_path / "dst"
        src.write_text("new")
        dst.write_text("old")
        with diskchaos.injected(DiskFaultInjector(rename_at=(0,))):
            with pytest.raises(OSError):
                diskchaos.fs_replace(src, dst)
        assert dst.read_text() == "old"
        assert src.read_text() == "new"
        diskchaos.fs_replace(src, dst)  # passthrough once uninstalled
        assert dst.read_text() == "new"

    def test_injected_scope_always_uninstalls(self):
        with pytest.raises(RuntimeError):
            with diskchaos.injected(DiskFaultInjector()):
                assert diskchaos.active() is not None
                raise RuntimeError("boom")
        assert diskchaos.active() is None

    def test_file_write_short_raises_after_prefix(self, tmp_path):
        path = tmp_path / "f"
        with open(path, "w", encoding="utf-8") as fh:
            with diskchaos.injected(DiskFaultInjector(short_write_at=(0,))):
                with pytest.raises(OSError):
                    diskchaos.fs_file_write(fh, "abcdef")
        assert path.read_text() == "abc"


class TestDiskStoreUnderFaults:
    def test_put_failure_is_contained_and_counted(self, tmp_path):
        from repro.cache.disk import DiskStore

        store = DiskStore(tmp_path / "cache")
        with diskchaos.injected(DiskFaultInjector(eio_write_at=(0,))):
            assert store.put("k", {"v": 1}) is False
        assert store.io_errors == 1
        assert store.get("k", default="absent") == "absent"
        assert store.put("k", {"v": 1}) is True
        assert store.get("k") == {"v": 1}

    def test_rename_fault_keeps_old_value_visible(self, tmp_path):
        from repro.cache.disk import DiskStore

        store = DiskStore(tmp_path / "cache")
        assert store.put("k", "old") is True
        with diskchaos.injected(DiskFaultInjector(rename_at=(0,))):
            assert store.put("k", "new") is False
        assert store.get("k") == "old"  # atomic swap never half-applies

    def test_fsync_fault_fails_the_put(self, tmp_path):
        from repro.cache.disk import DiskStore

        store = DiskStore(tmp_path / "cache")
        with diskchaos.injected(DiskFaultInjector(eio_fsync_at=(0,))):
            assert store.put("k", "v") is False
        assert store.get("k", default="absent") == "absent"


class TestJournalUnderFaults:
    def test_append_failure_is_typed(self, tmp_path):
        from repro.parallel.resilient import CheckpointJournal

        journal = CheckpointJournal(tmp_path / "j.jsonl")
        try:
            journal.record("fp0", {"ok": 1})
            with diskchaos.injected(DiskFaultInjector(enospc_at=(0,))):
                with pytest.raises(CheckpointError,
                                   match="journal append failed"):
                    journal.record("fp1", {"ok": 2})
        finally:
            journal.close()
        # The surviving journal still replays its intact records.
        resumed = CheckpointJournal(tmp_path / "j.jsonl", resume=True)
        try:
            assert resumed.completed() == {"fp0": {"ok": 1}}
        finally:
            resumed.close()
