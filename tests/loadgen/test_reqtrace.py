"""The repro-reqtrace/1 trace: schema, byte-identity, torn tails, recording."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError, ServiceError
from repro.loadgen import (
    REQTRACE_SCHEMA,
    WorkloadSpec,
    build_requests,
    read_reqtrace,
    requests_from_spool,
    validate_reqtrace_record,
    write_reqtrace,
)
from repro.obs.metrics import default_registry, reset_default_registry
from repro.service import JobSpec, JobSpool


@pytest.fixture
def wl():
    return WorkloadSpec(workload="phase_shift", pacing="open", n_requests=25,
                        n_keys=8, seed=11, rate=40.0)


class TestRoundTrip:
    def test_requests_survive_the_round_trip(self, tmp_path, wl):
        requests = build_requests(wl)
        path = write_reqtrace(tmp_path / "t.jsonl", requests, workload=wl)
        back, header, malformed = read_reqtrace(path)
        assert back == requests
        assert malformed == 0
        assert header["source"] == "workload"
        assert WorkloadSpec.from_dict(header["workload"]) == wl
        assert header["n_requests"] == len(requests)

    def test_write_is_byte_deterministic(self, tmp_path, wl):
        requests = build_requests(wl)
        a = write_reqtrace(tmp_path / "a.jsonl", requests, workload=wl)
        b = write_reqtrace(tmp_path / "b.jsonl", requests, workload=wl)
        assert a.read_bytes() == b.read_bytes()

    def test_header_passthrough_makes_replay_bit_identical(self, tmp_path, wl):
        requests = build_requests(wl)
        original = write_reqtrace(tmp_path / "run.jsonl", requests,
                                  workload=wl)
        back, header, _ = read_reqtrace(original)
        replayed = write_reqtrace(tmp_path / "replay.jsonl", back,
                                  header=header)
        assert original.read_bytes() == replayed.read_bytes()

    def test_every_line_is_schema_stamped_and_sorted(self, tmp_path, wl):
        path = write_reqtrace(tmp_path / "t.jsonl", build_requests(wl),
                              workload=wl)
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert record["schema"] == REQTRACE_SCHEMA
            assert list(record) == sorted(record)

    def test_missing_file_raises_typed(self, tmp_path):
        with pytest.raises(ReproError, match="no request trace"):
            read_reqtrace(tmp_path / "absent.jsonl")


class TestValidation:
    def _req(self, **overrides):
        record = {"schema": REQTRACE_SCHEMA, "kind": "req", "i": 0,
                  "key": "k000000", "t_offset": 0.0,
                  "spec": JobSpec(kind="sweep", app="gcc").as_dict()}
        record.update(overrides)
        return record

    def test_valid_record_passes(self):
        assert validate_reqtrace_record(self._req())["kind"] == "req"

    @pytest.mark.parametrize("mutate", [
        {"schema": "repro-reqtrace/999"},
        {"kind": "mystery"},
        {"i": -1},
        {"t_offset": -0.5},
        {"i": "zero"},
        {"spec": "not-a-dict"},
        {"i": True},
    ])
    def test_bad_records_rejected(self, mutate):
        with pytest.raises(ValueError):
            validate_reqtrace_record(self._req(**mutate))

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            validate_reqtrace_record(["not", "a", "record"])

    def test_header_needs_a_source(self):
        with pytest.raises(ValueError, match="source"):
            validate_reqtrace_record(
                {"schema": REQTRACE_SCHEMA, "kind": "header"})


class TestTornTail:
    def test_torn_final_line_counted_not_fatal(self, tmp_path, wl):
        reset_default_registry()
        requests = build_requests(wl)
        path = write_reqtrace(tmp_path / "t.jsonl", requests, workload=wl)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro-reqtrace/1", "kind": "req", "i":')
        back, _, malformed = read_reqtrace(path)
        assert back == requests
        assert malformed == 1
        counter = default_registry().get("obs.reader.malformed_lines")
        assert counter is not None and counter.value >= 1

    def test_invalid_schema_line_counted_as_malformed(self, tmp_path, wl):
        requests = build_requests(wl)
        path = write_reqtrace(tmp_path / "t.jsonl", requests, workload=wl)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"schema": "other/1", "kind": "req"}) + "\n")
        back, _, malformed = read_reqtrace(path)
        assert back == requests
        assert malformed == 1

    def test_unparseable_spec_counted_as_malformed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [
            {"schema": REQTRACE_SCHEMA, "kind": "header", "source": "x",
             "n_requests": 1, "workload": None},
            {"schema": REQTRACE_SCHEMA, "kind": "req", "i": 0,
             "key": "k000000", "t_offset": 0.0,
             "spec": {"kind": "nonsense-kind"}},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in lines))
        back, header, malformed = read_reqtrace(path)
        assert back == []
        assert header is not None
        assert malformed == 1


class TestRecordFromSpool:
    def test_submit_events_become_replayable_requests(self, tmp_path):
        spool = JobSpool.ensure(tmp_path / "spool")
        specs = [JobSpec(kind="sweep", app="gcc", start=0, stop=4),
                 JobSpec(kind="sweep", app="mcf", start=4, stop=8)]
        jids = [spool.submit(s) for s in specs]
        requests, malformed = requests_from_spool(spool.root)
        assert malformed == 0
        assert [r.spec for r in requests] == specs
        assert [r.i for r in requests] == [0, 1]
        assert requests[0].t_offset == 0.0
        assert requests[1].t_offset >= 0.0
        assert all(r.key == f"job:{j[:12]}" for r, j in zip(requests, jids))
        # The recording round-trips through the trace format.
        path = write_reqtrace(tmp_path / "rec.jsonl", requests,
                              source=f"spool:{spool.root}")
        back, header, _ = read_reqtrace(path)
        assert back == requests
        assert header["source"].startswith("spool:")

    def test_empty_spool_records_nothing(self, tmp_path):
        spool = JobSpool.ensure(tmp_path / "spool")
        requests, malformed = requests_from_spool(spool.root)
        assert requests == [] and malformed == 0

    def test_missing_spool_raises_typed(self, tmp_path):
        with pytest.raises(ServiceError):
            requests_from_spool(tmp_path / "absent")

    def test_recording_survives_compaction(self, tmp_path):
        """Folded history must still record: snapshot jobs come back as
        synthetic submits ahead of the live tail, one per job."""
        from repro.service import compact

        spool = JobSpool.ensure(tmp_path / "spool")
        specs = [JobSpec(kind="sweep", app="gcc", start=0, stop=4),
                 JobSpec(kind="sweep", app="mcf", start=4, stop=8)]
        jids = [spool.submit(s) for s in specs]
        spool.claim("w0", now=100.0)
        spool.complete(jids[0], "w0", {"ok": True}, elapsed=0.1)
        before, _ = requests_from_spool(spool.root)
        compact(spool)
        after, malformed = requests_from_spool(spool.root)
        assert malformed == 0
        assert [r.spec for r in after] == specs
        assert [r.key for r in after] == [r.key for r in before]
        assert [r.t_offset for r in after] == [r.t_offset for r in before]
        # Live traffic after the compaction keeps appending to the record.
        extra = JobSpec(kind="sweep", app="gzip", start=0, stop=2)
        spool.submit(extra)
        final, malformed = requests_from_spool(spool.root)
        assert malformed == 0
        assert [r.spec for r in final] == specs + [extra]
