"""Load-report edge cases: empty runs, total shed, torn traces.

The report path is needed most when a run went badly, so the worst runs —
nothing completed, everything shed at admission, a trace torn mid-append —
must all still produce a rendered report and honest counts.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.loadgen import (
    LOADREPORT_SCHEMA,
    LoadResult,
    ServiceTarget,
    SimTarget,
    VirtualClock,
    build_report,
    build_requests,
    read_report,
    read_reqtrace,
    render_report,
    run_requests,
    write_report,
    write_reqtrace,
    WorkloadSpec,
    SpecCatalog,
)
from repro.obs.metrics import default_registry, reset_default_registry
from repro.service import JobSpool, SpoolConfig


class TestZeroCompleted:
    def test_empty_run_reports_without_raising(self):
        doc = build_report(LoadResult(outcomes=[], wall_s=0.0))
        assert doc["schema"] == LOADREPORT_SCHEMA
        assert doc["n_requests"] == 0
        assert doc["throughput_rps"] == 0.0
        assert doc["latency"]["count"] == 0
        assert doc["latency"]["max"] is None
        text = render_report(doc)
        assert "(no completed requests)" in text

    def test_timeout_only_run_reports_without_raising(self):
        clock = VirtualClock()
        target = SimTarget(clock=clock, base_latency=100.0, jitter=0.0)
        wl = WorkloadSpec(workload="static", n_requests=4, n_keys=4, seed=1)
        result = run_requests(build_requests(wl), target, timeout_s=1.0,
                              poll=0.5, clock=clock, sleep=clock.sleep)
        doc = build_report(result, workload=wl)
        assert doc["outcomes"]["timeout"] == 4
        assert doc["outcomes"]["done"] == 0
        assert doc["latency"]["count"] == 0
        assert "(no completed requests)" in render_report(doc)


class TestTotalShed:
    def test_hundred_percent_shed_under_max_depth(self, tmp_path):
        # A spool pre-filled to its admission bound with nothing draining
        # it: every loadgen submission must shed, and the report must say
        # exactly that.
        root = tmp_path / "spool"
        spool = JobSpool.ensure(root, SpoolConfig(max_depth=3))
        catalog = SpecCatalog()
        for i in range(100, 103):  # occupy the whole queue
            spool.submit(catalog.spec(i))
        target = ServiceTarget(str(root))
        wl = WorkloadSpec(workload="static", n_requests=6, n_keys=4, seed=3)
        result = run_requests(build_requests(wl, catalog), target,
                              timeout_s=5.0)
        counts = result.counts()
        assert counts["shed"] == 6 and counts["done"] == 0
        doc = build_report(result, workload=wl)
        assert doc["outcomes"]["shed"] == 6
        assert doc["errors"] == {"ServiceOverloadError": 6}
        assert doc["throughput_rps"] == 0.0
        text = render_report(doc)
        assert "ServiceOverloadError" in text
        assert "(no completed requests)" in text


class TestTornTraceReplay:
    def test_replay_of_torn_trace_reports_and_counts_the_tear(self, tmp_path):
        reset_default_registry()
        wl = WorkloadSpec(workload="static", n_requests=5, n_keys=3, seed=4)
        path = write_reqtrace(tmp_path / "t.jsonl", build_requests(wl),
                              workload=wl)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro-reqtrace/1", "kind": "r')  # torn
        requests, _, malformed = read_reqtrace(path)
        assert malformed == 1
        clock = VirtualClock()
        target = SimTarget(clock=clock)
        result = run_requests(requests, target, clock=clock,
                              sleep=clock.sleep)
        doc = build_report(result, workload=wl, source="replay",
                           malformed_lines=malformed)
        assert doc["malformed_lines"] == 1
        assert doc["outcomes"]["done"] == 5
        text = render_report(doc)
        assert "malformed_lines" in text
        counter = default_registry().get("obs.reader.malformed_lines")
        assert counter is not None and counter.value >= 1


class TestReportIO:
    def test_report_round_trips_through_disk(self, tmp_path):
        doc = build_report(LoadResult(outcomes=[], wall_s=1.0),
                           source="run")
        path = write_report(tmp_path / "r.json", doc)
        assert read_report(path) == doc

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"schema": "repro-metrics/1"}))
        with pytest.raises(ReproError, match="repro-loadreport/1"):
            read_report(path)

    def test_unreadable_report_rejected(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="unreadable"):
            read_report(path)
