"""Property-based tests for the workload generators' determinism contract.

One shrinkable (or seeded-fallback) integer seed drives every shape
through the invariants the trace-replay machinery depends on:

* same spec (same seed) ⇒ the identical request stream, twice;
* open-loop inter-arrival gaps are non-negative and offsets non-decreasing;
* hot-set draws respect the configured skew (frequency concentration);
* phase-shift boundaries land exactly where the spec schedules them.

Runs under hypothesis when installed; falls back to a fixed seeded-random
sweep otherwise (same idiom as the cache policy properties).
"""

from __future__ import annotations

import random

import pytest

from repro.loadgen import (
    PACING_MODES,
    WORKLOAD_SHAPES,
    ReqGenEngine,
    SpecCatalog,
    WorkloadSpec,
    build_requests,
)

try:
    from hypothesis import given, settings, strategies as st

    def seeds(n_examples: int = 25, max_seed: int = 10**6):
        """Feed the test a shrinkable integer seed via hypothesis."""

        def deco(fn):
            return settings(max_examples=n_examples, deadline=None)(
                given(st.integers(0, max_seed))(fn)
            )

        return deco

except ImportError:  # pragma: no cover - exercised only without hypothesis

    def seeds(n_examples: int = 25, max_seed: int = 10**6):
        """Fallback: a fixed, seeded sweep of random example seeds."""
        picker = random.Random(20260808)
        chosen = [picker.randrange(max_seed + 1) for _ in range(n_examples)]

        def deco(fn):
            return pytest.mark.parametrize("seed", chosen)(fn)

        return deco


def _spec(seed: int, **overrides) -> WorkloadSpec:
    rng = random.Random(seed)
    base = dict(
        workload=rng.choice(WORKLOAD_SHAPES),
        pacing=rng.choice(PACING_MODES),
        n_requests=rng.randint(1, 120),
        n_keys=rng.randint(2, 40),
        seed=seed,
        rate=rng.choice([0.5, 2.0, 8.0, 50.0]),
        concurrency=rng.randint(1, 8),
        hot_fraction=rng.choice([0.1, 0.2, 0.5]),
        hot_weight=rng.choice([0.0, 0.5, 0.8, 1.0]),
        n_phases=rng.randint(1, 6),
        period=rng.randint(1, 30),
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestDeterminism:
    @seeds()
    def test_same_seed_identical_stream(self, seed):
        wl = _spec(seed)
        first = build_requests(wl)
        second = build_requests(wl)
        assert first == second
        assert len(first) == wl.n_requests

    @seeds(n_examples=10)
    def test_different_streams_are_independent(self, seed):
        # Key choice and arrival schedule come from separate seeded streams:
        # switching pacing must not change which keys are requested.
        closed = build_requests(_spec(seed, pacing="closed"))
        opened = build_requests(_spec(seed, pacing="open"))
        assert [r.key for r in closed] == [r.key for r in opened]

    @seeds(n_examples=10)
    def test_requests_map_to_catalog_specs(self, seed):
        catalog = SpecCatalog()
        for req in build_requests(_spec(seed), catalog):
            index = int(req.key[1:])
            assert req.key == catalog.key(index)
            assert req.spec == catalog.spec(index)
            assert 0 <= req.spec.start < req.spec.stop <= catalog.space_size


class TestPacing:
    @seeds()
    def test_open_loop_offsets_non_negative_and_monotone(self, seed):
        wl = _spec(seed, pacing="open")
        offsets = [r.t_offset for r in build_requests(wl)]
        assert offsets[0] == 0.0
        assert all(b >= a >= 0.0 for a, b in zip(offsets, offsets[1:]))

    @seeds(n_examples=10)
    def test_closed_loop_offsets_all_zero(self, seed):
        wl = _spec(seed, pacing="closed")
        assert all(r.t_offset == 0.0 for r in build_requests(wl))

    def test_open_loop_rate_sets_the_mean_gap(self):
        wl = WorkloadSpec(pacing="open", n_requests=4000, seed=3, rate=10.0)
        offsets = ReqGenEngine(wl).arrival_offsets()
        mean_gap = offsets[-1] / (len(offsets) - 1)
        assert mean_gap == pytest.approx(1.0 / wl.rate, rel=0.1)


class TestHotSetSkew:
    @seeds(n_examples=15)
    def test_static_hot_set_respects_the_skew(self, seed):
        wl = _spec(seed, workload="static", n_requests=600, n_keys=20,
                   hot_fraction=0.2, hot_weight=0.8)
        n_hot = max(1, int(wl.n_keys * wl.hot_fraction))
        indices = ReqGenEngine(wl).key_indices()
        hot_share = sum(1 for i in indices if i < n_hot) / len(indices)
        # 600 draws at p=0.8: a seeded binomial stays well inside +/-0.1.
        assert hot_share == pytest.approx(wl.hot_weight, abs=0.1)

    def test_hot_weight_one_never_leaves_the_hot_set(self):
        wl = WorkloadSpec(workload="static", n_requests=300, n_keys=10,
                          seed=5, hot_fraction=0.2, hot_weight=1.0)
        n_hot = max(1, int(wl.n_keys * wl.hot_fraction))
        assert all(i < n_hot for i in ReqGenEngine(wl).key_indices())

    def test_scan_cold_draws_advance_round_robin(self):
        wl = WorkloadSpec(workload="scan", n_requests=200, n_keys=10,
                          seed=9, hot_fraction=0.2, hot_weight=0.0)
        n_hot = max(1, int(wl.n_keys * wl.hot_fraction))
        indices = ReqGenEngine(wl).key_indices()
        scan_len = wl.n_keys - n_hot
        expected = [n_hot + (i % scan_len) for i in range(len(indices))]
        assert indices == expected


class TestPhaseShift:
    @seeds(n_examples=15)
    def test_boundaries_land_on_schedule(self, seed):
        wl = _spec(seed, workload="phase_shift", hot_weight=1.0)
        engine = ReqGenEngine(wl)
        boundaries = engine.phase_boundaries()
        per_phase = wl.n_requests // wl.n_phases
        assert boundaries == [p * per_phase for p in range(wl.n_phases)]
        if per_phase == 0:
            return
        indices = engine.key_indices()
        for phase in range(wl.n_phases):
            lo, hi = engine.phase_window(phase)
            start = boundaries[phase]
            stop = (boundaries[phase + 1] if phase + 1 < wl.n_phases
                    else wl.n_requests)
            for i in indices[start:stop]:
                assert lo <= i < hi, (
                    f"request in phase {phase} drew key {i} outside its "
                    f"hot window [{lo}, {hi})")

    def test_oscillating_flips_every_period(self):
        wl = WorkloadSpec(workload="oscillating", n_requests=100, n_keys=10,
                          seed=4, period=25)
        half = wl.n_keys // 2
        indices = ReqGenEngine(wl).key_indices()
        for i, key in enumerate(indices):
            if (i // wl.period) % 2 == 0:
                assert key < half
            else:
                assert key >= half


class TestValidation:
    @pytest.mark.parametrize("bad", [
        dict(workload="zipf"),
        dict(pacing="batch"),
        dict(n_requests=0),
        dict(n_keys=1),
        dict(rate=0.0),
        dict(concurrency=0),
        dict(hot_fraction=1.0),
        dict(hot_weight=1.5),
        dict(n_phases=0),
        dict(period=0),
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            WorkloadSpec(**bad)

    def test_round_trips_through_dict(self):
        wl = WorkloadSpec(workload="scan", pacing="open", seed=17, rate=3.5)
        assert WorkloadSpec.from_dict(wl.as_dict()) == wl

    def test_from_dict_ignores_unknown_keys(self):
        assert WorkloadSpec.from_dict(
            {"workload": "static", "schema": "x", "future_field": 1}
        ) == WorkloadSpec(workload="static")
