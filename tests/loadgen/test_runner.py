"""The load runner against every target: sim, service spool, library."""

from __future__ import annotations

import pytest

from repro.loadgen import (
    LibraryTarget,
    ServiceTarget,
    SimTarget,
    SpecCatalog,
    VirtualClock,
    WorkloadSpec,
    build_requests,
    run_requests,
    run_workload,
)
from repro.loadgen.workloads import Request
from repro.service import JobSpec, SpoolConfig, JobSpool, drain_queue, job_id


def _sim_pair(**kwargs):
    clock = VirtualClock()
    return SimTarget(clock=clock, **kwargs), clock


def _distinct_requests(n, n_instructions=1_000_000):
    """n requests over n distinct keys — no dedup, clean window math."""
    catalog = SpecCatalog(n_instructions=n_instructions)
    return [Request(i=i, key=catalog.key(i), t_offset=0.0,
                    spec=catalog.spec(i)) for i in range(n)]


class TestSimRuns:
    def test_every_request_gets_exactly_one_outcome(self):
        target, clock = _sim_pair(seed=1)
        wl = WorkloadSpec(workload="static", n_requests=40, n_keys=10, seed=1)
        result = run_workload(wl, target, clock=clock, sleep=clock.sleep)
        assert len(result.outcomes) == 40
        assert sorted(o.i for o in result.outcomes) == list(range(40))
        assert result.counts()["done"] == 40

    def test_runs_are_deterministic_under_virtual_time(self):
        wl = WorkloadSpec(workload="oscillating", pacing="open",
                          n_requests=30, n_keys=8, seed=3, rate=60.0)

        def once():
            target, clock = _sim_pair(seed=7, fail_every=5)
            return run_workload(wl, target, clock=clock, sleep=clock.sleep)

        a, b = once(), once()
        assert a.outcomes == b.outcomes
        assert a.wall_s == b.wall_s

    def test_failed_jobs_become_failed_outcomes(self):
        target, clock = _sim_pair(seed=2, fail_every=3)
        result = run_requests(_distinct_requests(9), target,
                              clock=clock, sleep=clock.sleep)
        counts = result.counts()
        assert counts["failed"] == 3
        assert all(o.error_type == "InjectedFault"
                   for o in result.outcomes if o.outcome == "failed")

    def test_latencies_match_the_sim_service_times(self):
        target, clock = _sim_pair(seed=4)
        requests = _distinct_requests(5)
        result = run_requests(requests, target, concurrency=1,
                              clock=clock, sleep=clock.sleep, poll=0.001)
        for outcome in result.outcomes:
            assert outcome.outcome == "done"
            expected = target.service_time(outcome.token)
            # Completion is observed on the poll after it happens.
            assert expected <= outcome.latency <= expected + 0.01


class TestPacing:
    def test_closed_loop_respects_the_window(self):
        target, clock = _sim_pair(seed=5)
        result = run_requests(_distinct_requests(20), target, concurrency=3,
                              clock=clock, sleep=clock.sleep)
        assert result.counts()["done"] == 20
        assert target.max_in_flight <= 3

    def test_open_loop_overlaps_beyond_any_window(self):
        target, clock = _sim_pair(seed=5)
        run_requests(_distinct_requests(20), target, concurrency=None,
                     clock=clock, sleep=clock.sleep)
        assert target.max_in_flight > 3

    def test_open_loop_honours_planned_offsets(self):
        target, clock = _sim_pair(seed=6, base_latency=0.001, jitter=0.0)
        catalog = SpecCatalog()
        requests = [Request(i=i, key=catalog.key(i), t_offset=i * 1.0,
                            spec=catalog.spec(i)) for i in range(4)]
        result = run_requests(requests, target, clock=clock,
                              sleep=clock.sleep, poll=0.05)
        for outcome in result.outcomes:
            assert outcome.t_issue >= outcome.i * 1.0
        assert result.wall_s >= 3.0

    def test_time_scale_compresses_the_schedule(self):
        target, clock = _sim_pair(seed=6, base_latency=0.001, jitter=0.0)
        catalog = SpecCatalog()
        requests = [Request(i=i, key=catalog.key(i), t_offset=i * 100.0,
                            spec=catalog.spec(i)) for i in range(3)]
        result = run_requests(requests, target, time_scale=0.0,
                              clock=clock, sleep=clock.sleep)
        assert result.wall_s < 1.0

    def test_bad_arguments_rejected(self):
        target, clock = _sim_pair()
        with pytest.raises(ValueError):
            run_requests([], target, concurrency=0)
        with pytest.raises(ValueError):
            run_requests([], target, timeout_s=0.0)


class TestShedAndTimeout:
    def test_shed_requests_are_recorded_not_raised(self):
        target, clock = _sim_pair(seed=7, max_in_flight_allowed=2,
                                  base_latency=5.0, jitter=0.0)
        result = run_requests(_distinct_requests(6), target, concurrency=None,
                              clock=clock, sleep=clock.sleep, timeout_s=30.0)
        counts = result.counts()
        assert counts["shed"] == 4 and counts["done"] == 2
        shed = [o for o in result.outcomes if o.outcome == "shed"]
        assert all(o.error_type == "ServiceOverloadError" and o.token is None
                   and o.latency is None for o in shed)

    def test_quiet_tokens_time_out_instead_of_hanging(self):
        target, clock = _sim_pair(seed=8, base_latency=100.0, jitter=0.0)
        result = run_requests(_distinct_requests(3), target,
                              clock=clock, sleep=clock.sleep,
                              timeout_s=2.0, poll=0.5)
        assert result.counts()["timeout"] == 3
        assert all(o.latency >= 2.0 for o in result.outcomes)
        assert result.wall_s < 100.0

    def test_dedup_shares_one_completion_across_requests(self):
        target, clock = _sim_pair(seed=9)
        catalog = SpecCatalog()
        requests = [Request(i=i, key=catalog.key(0), t_offset=0.0,
                            spec=catalog.spec(0)) for i in range(5)]
        result = run_requests(requests, target, clock=clock,
                              sleep=clock.sleep)
        assert result.counts()["done"] == 5
        assert target.n_issued == 1 and target.n_deduped == 4


class TestServiceTarget:
    def test_run_completes_against_an_inline_drained_spool(self, tmp_path):
        root = str(tmp_path / "spool")
        target = ServiceTarget(root)
        wl = WorkloadSpec(workload="static", n_requests=8, n_keys=3, seed=2,
                          concurrency=4)
        requests = build_requests(wl, SpecCatalog(n_instructions=50_000))
        # Interleave the runner with an inline worker: issue everything
        # (closed window), drain, then let the runner observe completions.
        for req in requests[:4]:
            target.issue(req.spec)
        drain_queue(target.spool)
        result = run_requests(requests, target, concurrency=4, timeout_s=30.0,
                              poll=0.01,
                              sleep=lambda s: drain_queue(target.spool))
        assert result.counts()["done"] == 8
        assert result.counts()["shed"] == 0

    def test_overload_sheds_into_outcomes(self, tmp_path):
        root = tmp_path / "spool"
        JobSpool.ensure(root, SpoolConfig(max_depth=2))
        target = ServiceTarget(str(root))
        requests = _distinct_requests(5, n_instructions=50_000)
        result = run_requests(requests, target, concurrency=None,
                              timeout_s=1.0, poll=0.2)
        counts = result.counts()
        assert counts["shed"] == 3
        # Nothing drains the spool, so admitted jobs time out.
        assert counts["timeout"] == 2

    def test_deadline_rides_along(self, tmp_path):
        target = ServiceTarget(str(tmp_path / "spool"), deadline_s=9.5)
        spec = JobSpec(kind="sweep", app="gcc", start=0, stop=2)
        jid = target.issue(spec)
        assert target.spool.jobs()[jid].deadline_s == 9.5


class TestLibraryTarget:
    def test_sweeps_execute_and_dedup_in_process(self):
        target = LibraryTarget()
        catalog = SpecCatalog(n_instructions=50_000)
        spec = catalog.spec(0)
        token = target.issue(spec)
        assert token == job_id(spec)
        assert target.issue(spec) == token
        assert target.n_executed == 1 and target.n_deduped == 1
        assert target.completed([token]) == {token: ("done", None)}

    def test_fit_jobs_fail_typed_not_raise(self):
        target = LibraryTarget()
        token = target.issue(JobSpec(kind="fit", app="gcc"))
        state, error_type = target.completed([token])[token]
        assert state == "failed" and error_type == "ReproError"
