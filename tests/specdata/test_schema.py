"""Tests for the 32-parameter announcement schema."""

import pytest

from repro.ml.dataset import ColumnRole
from repro.specdata.schema import PARAMETER_FIELDS, SystemRecord, records_to_dataset


def _record(**overrides):
    kw = dict(
        family="xeon", year=2005, quarter=2,
        company="Dell", system_name="PowerEdge 1850 (0542)",
        processor_model="Xeon 3.40GHz", bus_frequency=800.0,
        processor_speed=3400.0, fpu_integrated=True,
        total_cores=1, total_chips=1, cores_per_chip=1,
        smt=True, parallel=False,
        l1i_size=12.0, l1d_size=16.0, l1_per_core=True,
        l2_size=2048.0, l2_onchip=True, l2_shared=False, l2_unified=True,
        l3_size=0.0, l3_onchip=False, l3_per_core=False,
        l3_shared=False, l3_unified=False,
        l4_size=0.0, l4_shared_count=0, l4_onchip=False,
        memory_size=4.0, memory_frequency=400.0,
        hd_size=73.0, hd_speed=10000.0, hd_type="SCSI",
        extra_components="none",
        specint_rate=18.5, specfp_rate=17.2,
    )
    kw.update(overrides)
    return SystemRecord(**kw)


class TestSchema:
    def test_exactly_32_parameters(self):
        assert len(PARAMETER_FIELDS) == 32

    def test_valid_record(self):
        _record()

    def test_core_arithmetic_enforced(self):
        with pytest.raises(ValueError, match="total_cores"):
            _record(total_cores=2)

    def test_rejects_bad_quarter(self):
        with pytest.raises(ValueError):
            _record(quarter=5)

    def test_rejects_nonpositive_rating(self):
        with pytest.raises(ValueError):
            _record(specint_rate=0.0)

    def test_rejects_negative_cache(self):
        with pytest.raises(ValueError):
            _record(l3_size=-1.0)


class TestRecordsToDataset:
    def test_32_columns(self):
        ds = records_to_dataset([_record(), _record(processor_speed=3600.0)])
        assert len(ds.column_names) == 32
        assert ds.n_records == 2

    def test_roles_assigned(self):
        ds = records_to_dataset([_record()])
        assert ds.column("processor_speed").role is ColumnRole.NUMERIC
        assert ds.column("smt").role is ColumnRole.FLAG
        assert ds.column("company").role is ColumnRole.CATEGORICAL

    def test_target_selection(self):
        recs = [_record()]
        assert records_to_dataset(recs, "specint_rate").target[0] == 18.5
        assert records_to_dataset(recs, "specfp_rate").target[0] == 17.2

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            records_to_dataset([_record()], "specweb")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            records_to_dataset([])

    def test_values_roundtrip(self):
        ds = records_to_dataset([_record(memory_size=8.0)])
        assert ds.column("memory_size").values[0] == 8.0
