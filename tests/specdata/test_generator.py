"""Tests for the synthetic announcement generator."""

import numpy as np
import pytest

from repro.specdata.families import FAMILIES, get_family
from repro.specdata.generator import GeneratorConfig, generate_all_records, generate_family_records


class TestDeterminism:
    def test_same_seed_same_records(self):
        a = generate_family_records("opteron", seed=3)
        b = generate_family_records("opteron", seed=3)
        assert [r.specint_rate for r in a] == [r.specint_rate for r in b]

    def test_different_seed_differs(self):
        a = generate_family_records("opteron", seed=3)
        b = generate_family_records("opteron", seed=4)
        assert [r.specint_rate for r in a] != [r.specint_rate for r in b]


class TestStructure:
    def test_counts_match_family_model(self, spec_archive):
        for name, fam in FAMILIES.items():
            assert len(spec_archive(name)) == fam.total_count

    def test_year_filter(self):
        recs = generate_family_records("xeon", seed=1, years=[2005])
        assert {r.year for r in recs} == {2005}
        assert len(recs) == get_family("xeon").years[2005].count

    def test_records_carry_family_topology(self, spec_archive):
        for r in spec_archive("opteron-4"):
            assert r.total_chips == 4
            assert r.total_cores == 4
            assert r.parallel

    def test_pentium_d_dual_core(self, spec_archive):
        for r in spec_archive("pentium-d"):
            assert r.cores_per_chip == 2

    def test_clock_options_respected(self, spec_archive):
        fam = get_family("opteron")
        for r in spec_archive("opteron"):
            assert r.processor_speed in fam.years[r.year].clocks

    def test_model_string_tracks_clock(self, spec_archive):
        recs = spec_archive("pentium-4")
        by_model = {}
        for r in recs:
            by_model.setdefault(r.processor_model, set()).add(r.processor_speed)
        # A model string maps to exactly one clock grade (collinearity).
        assert all(len(v) == 1 for v in by_model.values())

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            generate_family_records("itanium")


class TestPerformanceStructure:
    def test_clock_is_dominant_within_year(self, spec_archive):
        recs = [r for r in spec_archive("opteron") if r.year == 2005]
        fast = [r.specint_rate for r in recs if r.processor_speed == 2600]
        slow = [r.specint_rate for r in recs if r.processor_speed == 2400]
        assert np.mean(fast) > np.mean(slow)

    def test_next_year_exceeds_training_envelope(self, spec_archive):
        # The drift that breaks saturating NNs: 2006 contains systems faster
        # than anything announced in 2005.
        recs = spec_archive("opteron")
        top05 = max(r.specint_rate for r in recs if r.year == 2005)
        top06 = max(r.specint_rate for r in recs if r.year == 2006)
        assert top06 > top05

    def test_smp_rates_scale_with_ways(self, spec_archive):
        def mean_rate(fam):
            return np.mean([r.specint_rate for r in spec_archive(fam) if r.year == 2006])
        r1, r2, r4, r8 = (mean_rate(f) for f in
                          ("opteron", "opteron-2", "opteron-4", "opteron-8"))
        assert r1 < r2 < r4 < r8
        assert r8 < 8 * r1  # sublinear scaling

    def test_hd_parameters_carry_no_signal(self, spec_archive):
        recs = [r for r in spec_archive("xeon") if r.year == 2005]
        rates = np.array([r.specint_rate for r in recs])
        hd = np.array([r.hd_size for r in recs])
        assert abs(np.corrcoef(hd, rates)[0, 1]) < 0.3

    def test_fp_and_int_rates_differ(self, spec_archive):
        r = spec_archive("xeon")[0]
        assert r.specint_rate != r.specfp_rate


class TestGeneratorConfig:
    def test_zero_noise_is_deterministic_function(self):
        cfg = GeneratorConfig(system_noise=0.0, app_noise=0.0)
        recs = generate_family_records("pentium-d", seed=5, config=cfg)
        # Identical configurations must get identical ratings with no noise.
        by_key = {}
        for r in recs:
            key = (r.year, r.processor_speed, r.l2_size, r.memory_frequency,
                   r.bus_frequency, r.memory_size, r.smt, r.l1d_size,
                   r.l2_onchip, r.l1_per_core, r.l2_shared)
            by_key.setdefault(key, set()).add(round(r.specint_rate, 9))
        assert all(len(v) == 1 for v in by_key.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(system_noise=-0.1)
        with pytest.raises(ValueError):
            GeneratorConfig(rate_scale=0.0)


class TestGenerateAll:
    def test_all_seven_families(self):
        archive = generate_all_records(seed=2)
        assert set(archive) == set(FAMILIES)
