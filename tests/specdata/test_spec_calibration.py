"""Calibration of the synthetic archive against the paper's §4.1 profiles.

The paper reports records/range/variation per family: Opteron 138/1.40/0.08,
Opteron-2 152/1.58/0.11, Opteron-4 158/1.70/0.12, Opteron-8 58/1.68/0.13,
Pentium D 71/1.45/0.10, Pentium 4 66/3.72/0.34, Xeon 216/1.34/0.09.
"""

import pytest

from repro.util.stats import profile_responses

PAPER = {
    "xeon": (216, 1.34, 0.09),
    "pentium-4": (66, 3.72, 0.34),
    "pentium-d": (71, 1.45, 0.10),
    "opteron": (138, 1.40, 0.08),
    "opteron-2": (152, 1.58, 0.11),
    "opteron-4": (158, 1.70, 0.12),
    "opteron-8": (58, 1.68, 0.13),
}


@pytest.mark.parametrize("family", sorted(PAPER))
def test_record_counts_exact(family, spec_archive):
    want, _, _ = PAPER[family]
    assert len(spec_archive(family)) == want


@pytest.mark.parametrize("family", sorted(PAPER))
def test_range_within_regime(family, spec_archive):
    _, want, _ = PAPER[family]
    got = profile_responses([r.specint_rate for r in spec_archive(family)]).range
    assert want * 0.75 <= got <= want * 1.35, f"{family}: {got:.2f} vs {want}"


@pytest.mark.parametrize("family", sorted(PAPER))
def test_variation_within_regime(family, spec_archive):
    _, _, want = PAPER[family]
    got = profile_responses([r.specint_rate for r in spec_archive(family)]).variation
    assert want * 0.5 <= got <= want * 1.7, f"{family}: {got:.3f} vs {want}"


def test_pentium4_widest_range(spec_archive):
    ranges = {f: profile_responses([r.specint_rate for r in spec_archive(f)]).range
              for f in PAPER}
    assert max(ranges, key=ranges.get) == "pentium-4"


def test_single_opteron_tightest_opteron_range(spec_archive):
    ranges = {f: profile_responses([r.specint_rate for r in spec_archive(f)]).range
              for f in ("opteron", "opteron-2", "opteron-4", "opteron-8")}
    assert ranges["opteron"] <= min(ranges["opteron-2"], ranges["opteron-4"]) + 0.2
