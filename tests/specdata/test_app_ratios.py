"""Tests for per-application ratio publication and prediction.

The paper: "we have also tested individual SPEC applications and show that
they can also be accurately estimated" (§4). The generator publishes all
26 per-app ratios with each announcement; any of them can be a modeling
target via ``records_to_dataset(..., target="app:<name>")``.
"""

import numpy as np
import pytest

from repro.ml import LinearRegressionModel, summarize_errors
from repro.specdata import FP_APPS, INT_APPS, records_to_dataset
from repro.util.stats import geometric_mean


class TestPublishedRatios:
    def test_all_26_apps_published(self, spec_archive):
        r = spec_archive("xeon")[0]
        names = {n for n, _ in r.app_ratios}
        assert names == {a.name for a in INT_APPS + FP_APPS}

    def test_geomean_consistency(self, spec_archive):
        # The published rate must be exactly the geomean of the published
        # int-app ratios (the SPEC aggregation rule).
        r = spec_archive("opteron")[0]
        ints = [r.app_ratio(a.name) for a in INT_APPS]
        assert geometric_mean(ints) == pytest.approx(r.specint_rate, rel=1e-9)
        fps = [r.app_ratio(a.name) for a in FP_APPS]
        assert geometric_mean(fps) == pytest.approx(r.specfp_rate, rel=1e-9)

    def test_unknown_app_raises(self, spec_archive):
        with pytest.raises(KeyError):
            spec_archive("xeon")[0].app_ratio("999.quake3")

    def test_mcf_scales_worse_than_crafty_on_smp(self, spec_archive):
        # Memory-bound mcf suffers more SMP contention than crafty.
        r1 = spec_archive("opteron")[0]
        r8 = spec_archive("opteron-8")[0]

        def scale(app):
            return r8.app_ratio(app) / r1.app_ratio(app)

        assert scale("181.mcf") < scale("186.crafty")


class TestAppTargetModeling:
    def test_dataset_target(self, spec_archive):
        ds = records_to_dataset(spec_archive("xeon"), "app:176.gcc")
        assert ds.target_name == "app:176.gcc"
        assert np.all(ds.target > 0)

    @pytest.mark.parametrize("app", ["181.mcf", "186.crafty", "171.swim"])
    def test_chronological_app_prediction(self, app, spec_archive):
        # Individual applications are predictable chronologically too.
        recs = spec_archive("opteron")
        train = records_to_dataset([r for r in recs if r.year == 2005],
                                   f"app:{app}")
        test = records_to_dataset([r for r in recs if r.year == 2006],
                                  f"app:{app}")
        model = LinearRegressionModel("backward").fit(train)
        err = summarize_errors(model.predict(test), test.target)
        assert err.mean < 8.0, app
