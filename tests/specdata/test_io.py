"""Tests for CSV import/export of announcement records."""

import pytest

from repro.specdata import read_records_csv, write_records_csv


class TestRoundTrip:
    def test_full_round_trip(self, tmp_path, spec_archive):
        records = spec_archive("opteron-2")
        path = tmp_path / "opteron2.csv"
        write_records_csv(records, path)
        back = read_records_csv(path)
        assert len(back) == len(records)
        for a, b in zip(records, back):
            assert a.system_name == b.system_name
            assert a.processor_speed == b.processor_speed
            assert a.smt == b.smt
            assert a.total_cores == b.total_cores
            assert a.specint_rate == pytest.approx(b.specint_rate)
            assert dict(a.app_ratios)["181.mcf"] == pytest.approx(
                dict(b.app_ratios)["181.mcf"])

    def test_loaded_records_feed_workflows(self, tmp_path, spec_archive):
        from repro.core import model_builders, run_chronological

        path = tmp_path / "xeon.csv"
        write_records_csv(spec_archive("xeon"), path)
        records = read_records_csv(path)
        res = run_chronological("xeon", model_builders(("LR-B",)),
                                records=records)
        assert res.errors["LR-B"].mean < 10.0


class TestValidation:
    def test_write_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_records_csv([], tmp_path / "x.csv")

    def test_read_missing_columns(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("family,year\nxeon,2005\n")
        with pytest.raises(ValueError, match="missing columns"):
            read_records_csv(p)

    def test_read_empty_file(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("")
        with pytest.raises(ValueError):
            read_records_csv(p)

    def test_read_header_only(self, tmp_path, spec_archive):
        p = tmp_path / "header.csv"
        write_records_csv(spec_archive("xeon")[:1], p)
        lines = p.read_text().splitlines()
        p.write_text(lines[0] + "\n")
        with pytest.raises(ValueError, match="no data rows"):
            read_records_csv(p)
