"""Tests for the processor-family technology models."""

import pytest

from repro.specdata.families import FAMILIES, FAMILY_ORDER, ProcessorFamily, YearTech, get_family


class TestRegistry:
    def test_seven_families(self):
        assert len(FAMILIES) == 7
        assert set(FAMILY_ORDER) == set(FAMILIES)

    def test_lookup(self):
        assert get_family("xeon").vendor == "Intel"
        with pytest.raises(KeyError):
            get_family("athlon")

    def test_opteron_smp_ways(self):
        assert get_family("opteron").n_chips == 1
        assert get_family("opteron-2").n_chips == 2
        assert get_family("opteron-4").n_chips == 4
        assert get_family("opteron-8").n_chips == 8


class TestTechnologyEvolution:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_clocks_nondecreasing_over_years(self, family):
        fam = get_family(family)
        years = sorted(fam.years)
        tops = [max(fam.years[y].clocks) for y in years]
        assert tops == sorted(tops)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_2005_and_2006_present(self, family):
        # The chronological experiments need the paper's train/test years.
        fam = get_family(family)
        assert 2005 in fam.years and 2006 in fam.years
        assert fam.years[2005].count >= 10
        assert fam.years[2006].count >= 10

    def test_pentium4_has_long_history(self):
        assert min(get_family("pentium-4").years) == 2000

    def test_yeartech_validation(self):
        with pytest.raises(ValueError):
            YearTech(-1, (1000,), (400,), (256,), (0,), (266,), (1,))
        with pytest.raises(ValueError):
            YearTech(5, (), (400,), (256,), (0,), (266,), (1,))


class TestFamilyValidation:
    def test_rejects_zero_chips(self):
        fam = get_family("xeon")
        with pytest.raises(ValueError):
            ProcessorFamily(
                name="bad", display="Bad", vendor="X",
                n_chips=0, cores_per_chip=1, smt_available=False,
                arch_factor=1.0, arch_growth=0.0, scaling_eff=0.9,
                l1i_kb=16.0, l1d_options=(16.0,), l1_per_core_prob=1.0,
                l2_onchip_prob=1.0, l2_shared_prob=0.0,
                companies=("A",), system_stems=("S",),
                years=fam.years,
            )
