"""Tests for the SPEC CPU2000 rating computation."""

import numpy as np
import pytest

from repro.specdata.ratings import (
    FP_APPS,
    INT_APPS,
    SpecApp,
    SystemPerformance,
    compute_rate,
)


def _perf(**overrides):
    kw = dict(clock=1.0, l2=1.0, memfreq=1.0, bus=1.0, memsize=1.0,
              n_cores=1, arch_factor=1.0, smt=False)
    kw.update(overrides)
    return SystemPerformance(**kw)


class TestSuites:
    def test_app_counts_match_spec2000(self):
        # "12 integer applications, 14 floating-point applications"
        assert len(INT_APPS) == 12
        assert len(FP_APPS) == 14

    def test_mcf_memory_heaviest_int_app(self):
        mcf = next(a for a in INT_APPS if "mcf" in a.name)
        assert mcf.mem_exp == max(a.mem_exp for a in INT_APPS)
        assert mcf.clock_exp == min(a.clock_exp for a in INT_APPS)

    def test_ref_times_positive(self):
        assert all(a.ref_time > 0 for a in INT_APPS + FP_APPS)

    def test_spec_app_validation(self):
        with pytest.raises(ValueError):
            SpecApp("x", -1.0, 0.9, 0.1, 0.1)
        with pytest.raises(ValueError):
            SpecApp("x", 100.0, 2.0, 0.1, 0.1)


class TestComputeRate:
    def test_reference_machine_rates_scale(self):
        rate = compute_rate(INT_APPS, _perf(), scale=10.0)
        assert rate == pytest.approx(10.0, rel=1e-9)

    def test_faster_clock_raises_rate(self):
        slow = compute_rate(INT_APPS, _perf(clock=1.0))
        fast = compute_rate(INT_APPS, _perf(clock=1.5))
        assert fast > slow
        # Sub-linear in clock: memory-bound apps cap the geomean gain.
        assert fast / slow < 1.5

    def test_more_cache_raises_rate(self):
        assert compute_rate(INT_APPS, _perf(l2=2.0)) > compute_rate(INT_APPS, _perf())

    def test_smt_gain(self):
        assert compute_rate(INT_APPS, _perf(smt=True)) > compute_rate(INT_APPS, _perf())

    def test_rate_scaling_sublinear(self):
        one = compute_rate(INT_APPS, _perf(n_cores=1))
        eight = compute_rate(INT_APPS, _perf(n_cores=8))
        assert 4.0 < eight / one < 8.0  # speedup but below ideal

    def test_fast_memory_helps_smp_more(self):
        # The §4.4 mechanism: memory frequency matters more at higher N.
        def gain(n):
            lo = compute_rate(INT_APPS, _perf(n_cores=n, memfreq=0.8))
            hi = compute_rate(INT_APPS, _perf(n_cores=n, memfreq=1.6))
            return hi / lo
        assert gain(8) > gain(1)

    def test_noise_reproducible(self):
        a = compute_rate(INT_APPS, _perf(), np.random.default_rng(3), 0.05)
        b = compute_rate(INT_APPS, _perf(), np.random.default_rng(3), 0.05)
        assert a == b

    def test_noise_moves_result(self):
        clean = compute_rate(INT_APPS, _perf())
        noisy = compute_rate(INT_APPS, _perf(), np.random.default_rng(4), 0.05)
        assert noisy != clean
        assert noisy == pytest.approx(clean, rel=0.15)

    def test_feature_validation(self):
        with pytest.raises(ValueError):
            _perf(clock=0.0)
        with pytest.raises(ValueError):
            _perf(n_cores=0)
        with pytest.raises(ValueError):
            _perf(scaling_eff=0.3)
