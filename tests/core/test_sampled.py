"""Tests for the sampled design-space exploration workflow."""

import numpy as np
import pytest

from repro.core.models import model_builders
from repro.core.sampled import run_rate_sweep, run_sampled_dse, sampling_counts


@pytest.fixture(scope="module")
def fast_builders():
    # LR-B and NN-S keep workflow tests quick; NN-E is covered elsewhere.
    return model_builders(("LR-B", "NN-S"), seed=3)


class TestSamplingCounts:
    def test_paper_one_percent(self):
        assert sampling_counts(4608, 0.01) == 46

    def test_minimum_floor(self):
        assert sampling_counts(100, 0.001) == 4

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            sampling_counts(100, 0.0)
        with pytest.raises(ValueError):
            sampling_counts(100, 1.0)


class TestRunSampledDse:
    def test_result_structure(self, space_dataset, rng, fast_builders):
        res = run_sampled_dse(space_dataset("applu"), fast_builders, 0.01, rng)
        assert res.rate == 0.01
        assert res.n_sampled == 46
        assert set(res.outcomes) == {"LR-B", "NN-S"}
        assert res.select_label in res.outcomes
        assert res.select_true_error == res.outcomes[res.select_label].true_error

    def test_true_errors_reasonable(self, space_dataset, rng, fast_builders):
        res = run_sampled_dse(space_dataset("applu"), fast_builders, 0.02, rng)
        for outcome in res.outcomes.values():
            assert 0.0 < outcome.true_error < 15.0

    def test_estimates_carry_five_reps(self, space_dataset, rng, fast_builders):
        res = run_sampled_dse(space_dataset("applu"), fast_builders, 0.01, rng)
        for outcome in res.outcomes.values():
            assert len(outcome.estimate.per_rep) == 5
            assert outcome.estimated_error_max >= outcome.estimated_error_mean

    def test_select_minimizes_estimate(self, space_dataset, rng, fast_builders):
        res = run_sampled_dse(space_dataset("mcf"), fast_builders, 0.02, rng)
        best = min(res.outcomes.values(), key=lambda o: o.estimated_error_max)
        assert res.select_label == best.label

    def test_mean_statistic_option(self, space_dataset, rng, fast_builders):
        res = run_sampled_dse(space_dataset("applu"), fast_builders, 0.01, rng,
                              select_statistic="mean")
        best = min(res.outcomes.values(), key=lambda o: o.estimated_error_mean)
        assert res.select_label == best.label

    def test_rejects_empty_builders(self, space_dataset, rng):
        with pytest.raises(ValueError):
            run_sampled_dse(space_dataset("applu"), {}, 0.01, rng)

    def test_accessor_dicts(self, space_dataset, rng, fast_builders):
        res = run_sampled_dse(space_dataset("applu"), fast_builders, 0.01, rng)
        assert set(res.true_errors()) == {"LR-B", "NN-S"}
        assert set(res.estimated_errors()) == {"LR-B", "NN-S"}


class TestRateSweep:
    def test_errors_trend_down_for_nn(self, space_dataset, fast_builders):
        # "as the training sample size increases ... better prediction
        # accuracy" — allow the paper's caveat of occasional upticks by
        # comparing the endpoints.
        rng = np.random.default_rng(0)
        results = run_rate_sweep(space_dataset("mcf"), fast_builders,
                                 [0.01, 0.05], rng)
        assert results[-1].outcomes["NN-S"].true_error < (
            results[0].outcomes["NN-S"].true_error * 1.1
        )

    def test_one_result_per_rate(self, space_dataset, fast_builders):
        rng = np.random.default_rng(0)
        results = run_rate_sweep(space_dataset("applu"), fast_builders,
                                 [0.01, 0.02, 0.03], rng)
        assert [r.rate for r in results] == [0.01, 0.02, 0.03]
