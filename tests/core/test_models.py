"""Tests for the model registry."""

import pytest

from repro.core.models import (
    ALL_MODELS,
    NINE_MODELS,
    SAMPLED_DSE_MODELS,
    build_model,
    model_builders,
)
from repro.ml.linear import LinearRegressionModel
from repro.ml.nn import NeuralNetworkModel


class TestRegistry:
    def test_ten_models_total(self):
        # "we use a total of nine models" + the NN-S single-layer variant.
        assert len(ALL_MODELS) == 10
        assert len(NINE_MODELS) == 9
        assert "NN-S" not in NINE_MODELS

    def test_sampled_dse_models(self):
        # Figures 2-6 present "the best LR model (LR-B), the best NN model
        # (NN-E), and a fast NN model (NN-S)".
        assert SAMPLED_DSE_MODELS == ("NN-E", "NN-S", "LR-B")

    def test_labels_match_instances(self):
        for label in ALL_MODELS:
            assert build_model(label).name == label

    def test_kinds(self):
        assert isinstance(build_model("LR-B"), LinearRegressionModel)
        assert isinstance(build_model("NN-E"), NeuralNetworkModel)

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            build_model("SVM")


class TestBuilders:
    def test_factories_produce_fresh_instances(self):
        builders = model_builders(("LR-B", "NN-Q"), seed=3)
        a, b = builders["NN-Q"](), builders["NN-Q"]()
        assert a is not b
        assert a.seed == b.seed == 3

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            model_builders(("LR-B", "GBM"))

    def test_factories_picklable(self):
        import pickle

        builders = model_builders(("LR-B",))
        clone = pickle.loads(pickle.dumps(builders["LR-B"]))
        assert clone().name == "LR-B"
