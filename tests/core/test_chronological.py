"""Tests for the chronological prediction workflow."""

import numpy as np
import pytest

from repro.core.chronological import chronological_datasets, run_chronological
from repro.core.models import model_builders


@pytest.fixture(scope="module")
def lr_builders():
    return model_builders(("LR-E", "LR-S", "LR-B"), seed=3)


class TestDatasets:
    def test_year_split(self, spec_archive):
        train, test = chronological_datasets(
            "opteron", records=spec_archive("opteron"))
        assert train.n_records == 50   # 2005 count
        assert test.n_records == 53    # 2006 count

    def test_custom_years(self, spec_archive):
        train, test = chronological_datasets(
            "xeon", 2004, 2005, records=spec_archive("xeon"))
        assert train.n_records == 60
        assert test.n_records == 72

    def test_missing_year_raises(self, spec_archive):
        with pytest.raises(ValueError, match="training year"):
            chronological_datasets("pentium-d", 1999, 2006,
                                   records=spec_archive("pentium-d"))

    def test_target_choice(self, spec_archive):
        train, _ = chronological_datasets(
            "xeon", target="specfp_rate", records=spec_archive("xeon"))
        assert train.target_name == "specfp_rate"


class TestRunChronological:
    def test_result_structure(self, spec_archive, lr_builders):
        res = run_chronological("opteron", lr_builders,
                                records=spec_archive("opteron"))
        assert res.family == "opteron"
        assert res.train_year == 2005 and res.test_year == 2006
        assert set(res.errors) == {"LR-E", "LR-S", "LR-B"}
        assert set(res.estimates) == set(res.errors)

    def test_lr_accuracy_in_paper_regime(self, spec_archive, lr_builders):
        # Paper Table 2: Opteron best ~2.1% — ours must land within a few x.
        res = run_chronological("opteron", lr_builders,
                                records=spec_archive("opteron"))
        assert res.best_error < 6.0

    def test_best_label_minimizes_mean(self, spec_archive, lr_builders):
        res = run_chronological("pentium-d", lr_builders,
                                records=spec_archive("pentium-d"))
        assert res.best_error == min(s.mean for s in res.errors.values())
        assert res.errors[res.best_label].mean == res.best_error

    def test_mean_errors_accessor(self, spec_archive, lr_builders):
        res = run_chronological("xeon", lr_builders,
                                records=spec_archive("xeon"))
        assert set(res.mean_errors()) == set(res.errors)

    def test_error_summaries_have_spread(self, spec_archive, lr_builders):
        res = run_chronological("xeon", lr_builders,
                                records=spec_archive("xeon"))
        for s in res.errors.values():
            assert s.n == res.n_test
            assert s.max >= s.mean >= 0.0

    def test_rejects_empty_builders(self, spec_archive):
        with pytest.raises(ValueError):
            run_chronological("xeon", {}, records=spec_archive("xeon"))

    def test_deterministic_for_lr(self, spec_archive, lr_builders):
        a = run_chronological("opteron-2", lr_builders,
                              records=spec_archive("opteron-2"),
                              rng=np.random.default_rng(5))
        b = run_chronological("opteron-2", lr_builders,
                              records=spec_archive("opteron-2"),
                              rng=np.random.default_rng(5))
        assert a.mean_errors() == b.mean_errors()


class TestPaperFindings:
    def test_nn_worse_than_lr_chronologically(self, spec_archive):
        # §4.3: "the neural networks perform poorer than linear regression".
        builders = model_builders(("LR-E", "NN-Q"), seed=3)
        res = run_chronological("opteron", builders,
                                records=spec_archive("opteron"))
        assert res.errors["NN-Q"].mean > res.errors["LR-E"].mean

    def test_stepwise_beats_enter_on_sparse_smp(self, spec_archive, lr_builders):
        # §4.3: LR-S/LR-B win on the multiprocessor data sets where LR-E
        # over-fits the small training year (Opteron 8: 21 records).
        res = run_chronological("opteron-8", lr_builders,
                                records=spec_archive("opteron-8"))
        assert min(res.errors["LR-S"].mean, res.errors["LR-B"].mean) <= (
            res.errors["LR-E"].mean
        )


class TestRollingChronological:
    def test_multiple_folds(self, spec_archive):
        from repro.core.chronological import run_rolling_chronological
        from repro.core.models import model_builders

        results = run_rolling_chronological(
            "xeon", model_builders(("LR-B",)),
            records=spec_archive("xeon"))
        pairs = [(r.train_year, r.test_year) for r in results]
        assert (2004, 2005) in pairs and (2005, 2006) in pairs

    def test_sparse_years_skipped(self, spec_archive):
        from repro.core.chronological import run_rolling_chronological
        from repro.core.models import model_builders

        # Pentium 4's 2000 (2 records) and 2001 (4) folds must be skipped.
        results = run_rolling_chronological(
            "pentium-4", model_builders(("LR-B",)),
            records=spec_archive("pentium-4"))
        assert all(r.n_train >= 8 for r in results)

    def test_findings_hold_across_folds(self, spec_archive):
        from repro.core.chronological import run_rolling_chronological
        from repro.core.models import model_builders

        results = run_rolling_chronological(
            "opteron", model_builders(("LR-B", "NN-Q"), seed=3),
            records=spec_archive("opteron"))
        # LR beats NN in (at least) the majority of year folds.
        wins = sum(r.errors["LR-B"].mean <= r.errors["NN-Q"].mean
                   for r in results)
        assert wins >= len(results) - 1
