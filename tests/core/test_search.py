"""Tests for surrogate-guided search quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.models import model_builders
from repro.core.search import (
    evaluate_search_quality,
    rank_correlation,
    regret,
    top_k_recall,
)


class TestRegret:
    def test_perfect_prediction_zero_regret(self):
        y = np.array([3.0, 1.0, 2.0])
        assert regret(y, y) == pytest.approx(0.0)

    def test_wrong_pick_costs(self):
        actual = np.array([1.0, 2.0])
        predicted = np.array([2.0, 1.0])  # picks index 1 (actual 2.0)
        assert regret(predicted, actual) == pytest.approx(1.0)

    def test_maximize_mode(self):
        actual = np.array([1.0, 2.0])
        predicted = np.array([2.0, 1.0])  # argmax -> index 0 (actual 1.0)
        assert regret(predicted, actual, minimize=False) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            regret(np.array([1.0]), np.array([1.0, 2.0]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.1, 100), min_size=2, max_size=30))
    def test_nonnegative(self, values):
        y = np.asarray(values)
        pred = y[::-1].copy()
        assert regret(pred, y) >= 0.0


class TestTopKRecall:
    def test_perfect(self):
        y = np.arange(10, dtype=float)
        assert top_k_recall(y, y, 3) == pytest.approx(1.0)

    def test_reversed_predictions(self):
        y = np.arange(10, dtype=float)
        assert top_k_recall(-y, y, 3) == pytest.approx(0.0)

    def test_k_bounds(self):
        y = np.arange(5, dtype=float)
        with pytest.raises(ValueError):
            top_k_recall(y, y, 0)
        with pytest.raises(ValueError):
            top_k_recall(y, y, 6)

    def test_in_unit_interval(self, rng):
        y = rng.random(40)
        pred = rng.random(40)
        r = top_k_recall(pred, y, 10)
        assert 0.0 <= r <= 1.0


class TestRankCorrelation:
    def test_identity(self):
        y = np.array([3.0, 1.0, 2.0, 5.0])
        assert rank_correlation(y, y) == pytest.approx(1.0)

    def test_reversal(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert rank_correlation(-y, y) == pytest.approx(-1.0)

    def test_monotone_transform_invariant(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert rank_correlation(np.exp(y), y) == pytest.approx(1.0)

    def test_constant_predictions(self):
        y = np.array([1.0, 2.0, 3.0])
        assert rank_correlation(np.ones(3), y) == pytest.approx(0.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            rank_correlation(np.array([1.0]), np.array([1.0]))


class TestEvaluateSearchQuality:
    def test_surrogate_finds_near_optimal_designs(self, space_dataset, rng):
        space = space_dataset("mcf")
        sample, _ = space.sample(138, rng)  # 3%
        model = model_builders(("NN-E",), seed=4)["NN-E"]()
        model.fit(sample)
        q = evaluate_search_quality(model, space)
        # The surrogate's pick loses at most a few percent vs the optimum,
        # and it orders the space nearly correctly.
        assert q.regret < 0.10
        assert q.rank_correlation > 0.9
        assert q.top_50_recall > 0.3
        assert q.n_designs == 4608
