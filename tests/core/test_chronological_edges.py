"""Edge cases of the chronological workflow: empty years, singleton training
years, and degenerate (constant-rating) archives."""

import dataclasses

import numpy as np
import pytest

from repro.core.chronological import chronological_datasets, run_chronological
from repro.core.models import model_builders
from repro.errors import DataIntegrityError


@pytest.fixture(scope="module")
def builders():
    return model_builders(("LR-S", "LR-B"), seed=3)


class TestEmptyTargetYear:
    def test_zero_records_in_test_year_typed_error(self, spec_archive):
        recs = spec_archive("opteron-2")
        with pytest.raises(DataIntegrityError, match="test year 2035") as ei:
            chronological_datasets("opteron-2", 2005, 2035, records=recs)
        assert ei.value.exit_code == 7

    def test_zero_records_in_training_year_typed_error(self, spec_archive):
        recs = spec_archive("opteron-2")
        with pytest.raises(DataIntegrityError, match="training year 1996"):
            chronological_datasets("opteron-2", 1996, 2006, records=recs)

    def test_still_catchable_as_value_error(self, spec_archive):
        # PR-1-era callers catch ValueError; the typed error must remain one.
        with pytest.raises(ValueError, match="training year"):
            chronological_datasets("opteron-2", 1996, 2006,
                                   records=spec_archive("opteron-2"))


class TestSingletonTrainingYear:
    def test_single_record_training_year_refused(self, spec_archive, builders):
        recs = spec_archive("opteron-2")
        one_2005 = next(r for r in recs if r.year == 2005)
        rest = [r for r in recs if r.year != 2005]
        with pytest.raises(DataIntegrityError, match="at least 2") as ei:
            run_chronological("opteron-2", builders, records=rest + [one_2005],
                              rng=np.random.default_rng(0))
        assert ei.value.exit_code == 7

    def test_tiny_training_year_still_runs(self, spec_archive, builders):
        recs = spec_archive("opteron-2")
        few_2005 = [r for r in recs if r.year == 2005][:6]
        rest = [r for r in recs if r.year != 2005]
        result = run_chronological("opteron-2", builders,
                                   records=rest + few_2005,
                                   rng=np.random.default_rng(0), n_cv_reps=2)
        assert result.n_train == 6
        assert all(np.isfinite(s.mean) for s in result.errors.values())


class TestConstantRatings:
    def test_all_identical_ratings_yield_finite_errors(self, spec_archive,
                                                       builders):
        # A degenerate archive where every system scores identically: the
        # fitters must not blow up (constant target, zero variance), and
        # every reported error must be finite.
        recs = [dataclasses.replace(r, specint_rate=100.0)
                for r in spec_archive("opteron-2")]
        result = run_chronological("opteron-2", builders, records=recs,
                                   rng=np.random.default_rng(0), n_cv_reps=2)
        for summary in result.errors.values():
            assert np.isfinite(summary.mean)
            assert summary.mean < 50.0  # predicting a constant is easy

    def test_constant_ratings_with_ladder(self, spec_archive):
        from repro.robust import ValidationGate, default_ladder

        recs = [dataclasses.replace(r, specint_rate=100.0)
                for r in spec_archive("opteron-2")]
        ladder = default_ladder(seed=3, gate=ValidationGate())
        result = run_chronological(
            "opteron-2", model_builders(("LR-S",), seed=3), records=recs,
            rng=np.random.default_rng(0), n_cv_reps=2, ladder=ladder)
        assert all(np.isfinite(s.mean) for s in result.errors.values())
