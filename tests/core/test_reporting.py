"""Tests for the paper-shaped report assembly."""

import pytest

from repro.core.chronological import ChronologicalResult
from repro.core.reporting import (
    figure_chronological_table,
    figure_sampled_series,
    table2,
    table3,
)
from repro.core.sampled import ModelOutcome, SampledDseResult
from repro.ml.metrics import ErrorSummary
from repro.ml.selection import ErrorEstimate


def _outcome(label, true_err, est):
    return ModelOutcome(label, ErrorEstimate(label, (est, est + 0.5)), true_err)


def _dse(rate, errs):
    outcomes = {k: _outcome(k, v, v * 0.9) for k, v in errs.items()}
    select = min(outcomes, key=lambda k: outcomes[k].estimate.max)
    return SampledDseResult(rate, int(rate * 4608), outcomes,
                            select, outcomes[select].true_error)


def _chrono(family, errs):
    return ChronologicalResult(
        family=family, train_year=2005, test_year=2006,
        n_train=50, n_test=53,
        errors={k: ErrorSummary(v, v / 2, v * 2, 53) for k, v in errs.items()},
        estimates={k: ErrorEstimate(k, (v,)) for k, v in errs.items()},
    )


class TestFigureSampledSeries:
    def test_contains_est_and_true_curves(self):
        results = [_dse(0.01, {"NN-E": 2.0, "LR-B": 4.0}),
                   _dse(0.02, {"NN-E": 1.5, "LR-B": 3.9})]
        out = figure_sampled_series("applu", results, ["NN-E", "LR-B"])
        assert "NN-E" in out and "NN-E-est" in out
        assert "select" in out
        assert "1%" in out and "2%" in out


class TestFigureChronologicalTable:
    def test_mean_and_std_rendered(self):
        out = figure_chronological_table(_chrono("xeon", {"LR-E": 2.1, "NN-Q": 6.0}))
        assert "xeon" in out and "LR-E" in out
        assert "2.10" in out


class TestTable2:
    def test_best_method_per_family(self):
        out = table2({
            "xeon": _chrono("xeon", {"LR-E": 2.1, "LR-B": 2.4}),
            "opteron-8": _chrono("opteron-8", {"LR-E": 4.0, "LR-B": 3.5}),
        })
        lines = out.splitlines()
        assert any("xeon" in ln and "LR-E" in ln for ln in lines)
        assert any("opteron-8" in ln and "LR-B" in ln for ln in lines)


class TestTable3:
    def test_select_row_present(self):
        per_app = {
            "applu": [_dse(0.01, {"NN-E": 2.0, "LR-B": 4.0})],
            "mcf": [_dse(0.01, {"NN-E": 5.0, "LR-B": 9.0})],
        }
        out = table3(per_app, ["LR-B", "NN-E"])
        assert "Select" in out
        assert "3.50" in out  # NN-E average (2+5)/2

    def test_rejects_ragged_results(self):
        per_app = {
            "applu": [_dse(0.01, {"NN-E": 2.0})],
            "mcf": [_dse(0.01, {"NN-E": 5.0}), _dse(0.02, {"NN-E": 4.0})],
        }
        with pytest.raises(ValueError):
            table3(per_app, ["NN-E"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            table3({}, ["NN-E"])
