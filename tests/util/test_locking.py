"""Tests for the advisory flock wrapper the service layer builds on."""

import multiprocessing
import os
import signal
import time

import pytest

from repro.util.locking import FileLock


class TestFileLock:
    def test_acquire_release_roundtrip(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        assert not lock.locked
        assert lock.acquire()
        assert lock.locked
        lock.release()
        assert not lock.locked
        assert (tmp_path / "x.lock").exists()  # left behind by design

    def test_acquire_is_idempotent_while_held(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        assert lock.acquire()
        assert lock.acquire()  # second call is a no-op True
        lock.release()

    def test_release_is_idempotent(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        lock.acquire()
        lock.release()
        lock.release()  # must not raise

    def test_context_manager(self, tmp_path):
        with FileLock(tmp_path / "x.lock") as lock:
            assert lock.locked
        assert not lock.locked

    def test_creates_parent_directories(self, tmp_path):
        lock = FileLock(tmp_path / "deep" / "nested" / "x.lock")
        assert lock.acquire()
        lock.release()

    @pytest.mark.skipif(not FileLock.enforced, reason="flock not enforced here")
    def test_second_holder_is_refused_nonblocking(self, tmp_path):
        a = FileLock(tmp_path / "x.lock")
        b = FileLock(tmp_path / "x.lock")
        assert a.acquire()
        assert b.acquire(blocking=False) is False
        assert not b.locked
        a.release()
        assert b.acquire(blocking=False)
        b.release()

    @pytest.mark.skipif(not FileLock.enforced, reason="flock not enforced here")
    def test_kernel_releases_lock_when_holder_is_sigkilled(self, tmp_path):
        """The crash-recovery property: a dead holder never wedges the lock."""
        path = tmp_path / "x.lock"
        ready = multiprocessing.Event()

        def hold() -> None:
            lock = FileLock(path)
            lock.acquire()
            ready.set()
            time.sleep(30)  # until killed

        p = multiprocessing.Process(target=hold)
        p.start()
        try:
            assert ready.wait(timeout=10)
            mine = FileLock(path)
            assert mine.acquire(blocking=False) is False  # genuinely held
            os.kill(p.pid, signal.SIGKILL)
            p.join(timeout=10)
            deadline = time.monotonic() + 5
            acquired = False
            while time.monotonic() < deadline:
                if mine.acquire(blocking=False):
                    acquired = True
                    break
                time.sleep(0.01)
            assert acquired, "flock survived its holder's death"
            mine.release()
        finally:
            if p.is_alive():
                p.kill()
                p.join()
