"""Tests for the paper-defined summary statistics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    DataProfile,
    geometric_mean,
    mean_absolute_percentage_error,
    percentage_errors,
    profile_responses,
    response_range,
    response_variation,
)

positive_lists = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)


class TestGeometricMean:
    def test_matches_manual(self):
        assert geometric_mean([1, 4, 16]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, float("nan")])

    @given(positive_lists)
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) * 0.999 <= g <= max(values) * 1.001

    @given(positive_lists, st.floats(min_value=0.1, max_value=10))
    def test_scale_equivariant(self, values, k):
        a = geometric_mean(values)
        b = geometric_mean([v * k for v in values])
        assert b == pytest.approx(a * k, rel=1e-9)


class TestResponseRange:
    def test_paper_definition(self):
        # "the ratio of the fastest to slowest configuration"
        assert response_range([100, 200, 638]) == pytest.approx(6.38)

    def test_constant_data(self):
        assert response_range([5, 5, 5]) == pytest.approx(1.0)

    @given(positive_lists)
    def test_at_least_one(self, values):
        assert response_range(values) >= 1.0


class TestResponseVariation:
    def test_is_coefficient_of_variation(self):
        y = np.array([1.0, 2.0, 3.0])
        assert response_variation(y) == pytest.approx(y.std() / y.mean())

    def test_constant_is_zero(self):
        assert response_variation([3, 3, 3]) == pytest.approx(0.0)

    def test_uniform_range_134_is_near_009(self):
        # The sanity check that identified the paper's metric: a near-uniform
        # spread over a 1.34x range has CV ~ 0.084 (Xeon: 1.34 / 0.09).
        y = np.linspace(1.0, 1.34, 216)
        assert 0.07 < response_variation(y) < 0.10


class TestProfileResponses:
    def test_returns_dataclass(self):
        p = profile_responses([1.0, 2.0])
        assert isinstance(p, DataProfile)
        assert p.count == 2
        assert p.range == pytest.approx(2.0)

    def test_str_format(self):
        p = DataProfile(138, 1.40, 0.08)
        assert str(p) == "138/1.40/0.08"


class TestPercentageErrors:
    def test_paper_formula(self):
        # 100 * |yhat - y| / y
        errs = percentage_errors(np.array([110.0]), np.array([100.0]))
        assert errs[0] == pytest.approx(10.0)

    def test_symmetric_in_direction(self):
        lo = percentage_errors(np.array([90.0]), np.array([100.0]))
        hi = percentage_errors(np.array([110.0]), np.array([100.0]))
        assert lo[0] == pytest.approx(hi[0])

    def test_rejects_zero_actual(self):
        with pytest.raises(ValueError):
            percentage_errors(np.array([1.0]), np.array([0.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            percentage_errors(np.array([1.0, 2.0]), np.array([1.0]))

    def test_perfect_prediction_is_zero(self):
        y = np.array([3.0, 5.0])
        assert mean_absolute_percentage_error(y, y) == pytest.approx(0.0)

    @given(positive_lists)
    def test_mape_nonnegative(self, values):
        y = np.asarray(values)
        yhat = y * 1.05
        assert mean_absolute_percentage_error(yhat, y) == pytest.approx(5.0, rel=1e-6)
