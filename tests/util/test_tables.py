"""Tests for ASCII table/series rendering."""

import pytest

from repro.util.tables import format_kv, format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.50" in out and "3.25" in out

    def test_title_line(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_ndigits(self):
        out = format_table(["x"], [[1.23456]], ndigits=4)
        assert "1.2346" in out

    def test_empty_rows_ok(self):
        out = format_table(["x"], [])
        assert "x" in out


class TestFormatSeries:
    def test_one_column_per_series(self):
        out = format_series("r", ["1%", "2%"], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        header = out.splitlines()[0]
        assert "r" in header and "a" in header and "b" in header

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("r", ["1%"], {"a": [1.0, 2.0]})


class TestFormatKv:
    def test_alignment(self):
        out = format_kv({"speed": 0.659, "memory_frequency": 0.154})
        lines = out.splitlines()
        assert all(" : " in line for line in lines)

    def test_title(self):
        out = format_kv({"a": 1}, title="Importances")
        assert out.splitlines()[0] == "Importances"
