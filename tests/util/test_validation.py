"""Tests for the argument-validation helpers."""

import pytest

from repro.util.validation import (
    require_fraction,
    require_in_range,
    require_one_of,
    require_positive,
    require_power_of_two,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive(1, "x")
        require_positive(0.5, "x")

    @pytest.mark.parametrize("bad", [0, -1, -0.1])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="x"):
            require_positive(bad, "x")


class TestRequireInRange:
    def test_bounds_inclusive(self):
        require_in_range(0.0, "x", 0.0, 1.0)
        require_in_range(1.0, "x", 0.0, 1.0)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            require_in_range(1.01, "x", 0.0, 1.0)


class TestRequireFraction:
    def test_one_allowed_zero_not(self):
        require_fraction(1.0, "x")
        with pytest.raises(ValueError):
            require_fraction(0.0, "x")


class TestRequirePowerOfTwo:
    @pytest.mark.parametrize("good", [1, 2, 4, 1024])
    def test_accepts_powers(self, good):
        require_power_of_two(good, "x")

    @pytest.mark.parametrize("bad", [0, 3, -4, 6, 2.0])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            require_power_of_two(bad, "x")


class TestRequireOneOf:
    def test_membership(self):
        require_one_of("a", "x", ["a", "b"])
        with pytest.raises(ValueError, match="must be one of"):
            require_one_of("c", "x", ["a", "b"])
