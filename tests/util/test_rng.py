"""Tests for deterministic RNG stream management."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import RngFactory, child_rng, stream_seed


class TestStreamSeed:
    def test_deterministic(self):
        assert stream_seed(42, "a", "b") == stream_seed(42, "a", "b")

    def test_differs_by_name(self):
        assert stream_seed(42, "a") != stream_seed(42, "b")

    def test_differs_by_root(self):
        assert stream_seed(1, "a") != stream_seed(2, "a")

    def test_name_order_matters(self):
        assert stream_seed(42, "a", "b") != stream_seed(42, "b", "a")

    def test_int_names_allowed(self):
        assert stream_seed(42, 1, 2) == stream_seed(42, 1, 2)

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=30))
    def test_always_in_64bit_range(self, root, name):
        s = stream_seed(root, name)
        assert 0 <= s < 2**64


class TestChildRng:
    def test_replayable(self):
        a = child_rng(7, "x").random(5)
        b = child_rng(7, "x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_independent_streams_differ(self):
        a = child_rng(7, "x").random(5)
        b = child_rng(7, "y").random(5)
        assert not np.allclose(a, b)


class TestRngFactory:
    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            RngFactory("abc")  # type: ignore[arg-type]

    def test_get_replays(self):
        f = RngFactory(5)
        assert f.get("t").random() == f.get("t").random()

    def test_spawn_matches_nested_names(self):
        f = RngFactory(5)
        sub = f.spawn("sim")
        assert sub.get("trace").random() == f.get("sim", "trace").random()

    def test_many_yields_distinct_streams(self):
        f = RngFactory(5)
        vals = [g.random() for g in f.many("w", 10)]
        assert len(set(vals)) == 10

    def test_seed_accessor(self):
        f = RngFactory(5)
        assert f.seed("a") == stream_seed(5, "a")
