"""SLO fold: job timings from spool events, latency histograms, reporting."""

from __future__ import annotations

import pytest

from repro.obs.slo import (
    SLO_BUCKETS,
    SLO_METRICS,
    compute_slo,
    fold_job_timings,
    render_slo_report,
    slo_snapshot,
)


def _events():
    """One done job, one failed-then-resubmitted-then-done job."""
    return [
        {"ev": "submit", "id": "a", "t": 100.0, "trace_id": "a",
         "spec": {"kind": "sweep"}},
        {"ev": "lease", "id": "a", "t": 101.0, "worker": "w0"},
        {"ev": "done", "id": "a", "t": 105.0, "worker": "w0"},
        {"ev": "submit", "id": "b", "t": 100.0, "trace_id": "b",
         "spec": {"kind": "fit"}},
        {"ev": "lease", "id": "b", "t": 102.0, "worker": "w1"},
        {"ev": "fail", "id": "b", "t": 103.0, "worker": "w1"},
        # resubmission of the failed job: fresh clock
        {"ev": "submit", "id": "b", "t": 200.0, "spec": {"kind": "fit"}},
        {"ev": "lease", "id": "b", "t": 203.0, "worker": "w0"},
        {"ev": "done", "id": "b", "t": 210.0, "worker": "w0"},
    ]


def _execute_span(trace_id, t_wall, duration, **attrs):
    return {"schema": "repro-trace/1", "kind": "span", "span_id": 1,
            "parent_id": None, "name": "job.execute", "t_wall": t_wall,
            "t_start": 0.0, "duration_s": duration, "status": "ok",
            "error": None, "trace_id": trace_id, "attrs": attrs}


class TestFoldJobTimings:
    def test_basic_milestones(self):
        jobs = fold_job_timings(_events())
        a = jobs["a"]
        assert (a.kind, a.trace_id) == ("sweep", "a")
        assert a.submit_t == 100.0
        assert a.lease_ts == [101.0]
        assert (a.terminal, a.terminal_t) == ("done", 105.0)

    def test_failed_resubmit_reopens_on_fresh_clock(self):
        b = fold_job_timings(_events())["b"]
        assert b.submit_t == 200.0  # not the original 100.0
        assert b.lease_ts == [203.0]  # pre-fail lease cleared
        assert (b.terminal, b.terminal_t) == ("done", 210.0)

    def test_pre_plane_resubmit_clears_the_old_clock(self):
        # A resubmit event written before the observability plane carries no
        # ``t``. It must RESET submit_t to None, not inherit the original
        # submission's timestamp: the new attempt's queue_wait measured from
        # the old clock would be charged the whole failed first attempt.
        jobs = fold_job_timings([
            {"ev": "submit", "id": "b", "t": 100.0, "spec": {"kind": "fit"}},
            {"ev": "lease", "id": "b", "t": 102.0, "worker": "w1"},
            {"ev": "fail", "id": "b", "t": 103.0, "worker": "w1"},
            {"ev": "submit", "id": "b", "spec": {"kind": "fit"}},  # no t
            {"ev": "lease", "id": "b", "t": 203.0, "worker": "w0"},
            {"ev": "done", "id": "b", "t": 210.0, "worker": "w0"},
        ])
        assert jobs["b"].submit_t is None
        assert jobs["b"].lease_ts == [203.0]
        assert jobs["b"].terminal == "done"

    def test_first_terminal_wins(self):
        jobs = fold_job_timings([
            {"ev": "submit", "id": "a", "t": 1.0},
            {"ev": "done", "id": "a", "t": 2.0},
            {"ev": "done", "id": "a", "t": 99.0},
            {"ev": "lease", "id": "a", "t": 50.0},  # post-terminal: ignored
        ])
        assert jobs["a"].terminal_t == 2.0
        assert jobs["a"].lease_ts == []

    def test_events_without_t_contribute_nothing(self):
        jobs = fold_job_timings([
            {"ev": "submit", "id": "a"},
            {"ev": "lease", "id": "a"},
            {"ev": "done", "id": "a"},
        ])
        assert jobs["a"].submit_t is None
        assert jobs["a"].lease_ts == []
        assert jobs["a"].terminal == "done"

    def test_unknown_job_events_skipped(self):
        assert fold_job_timings([{"ev": "lease", "id": "ghost", "t": 1.0},
                                 {"ev": "hb", "worker": "w0"}]) == {}


class TestComputeSlo:
    def test_queue_wait_and_e2e_from_spool_clock(self):
        slos = compute_slo(_events(), [])
        sweep = slos["sweep"]
        assert sweep["queue_wait"].snapshot()["sum"] == pytest.approx(1.0)
        assert sweep["e2e"].snapshot()["sum"] == pytest.approx(5.0)
        fit = slos["fit"]
        assert fit["queue_wait"].snapshot()["sum"] == pytest.approx(3.0)
        assert fit["e2e"].snapshot()["sum"] == pytest.approx(10.0)

    def test_execute_and_lease_to_start_from_spans(self):
        spans = [_execute_span("a", t_wall=101.25, duration=3.5)]
        slos = compute_slo(_events(), spans)
        sweep = slos["sweep"]
        assert sweep["execute"].snapshot()["sum"] == pytest.approx(3.5)
        assert sweep["lease_to_start"].snapshot()["sum"] == \
            pytest.approx(0.25)

    def test_span_before_any_lease_skips_lease_to_start(self):
        spans = [_execute_span("a", t_wall=100.5, duration=1.0)]
        sweep = compute_slo(_events(), spans)["sweep"]
        assert sweep["execute"].snapshot()["count"] == 1
        assert "lease_to_start" not in sweep

    def test_unmatched_span_falls_back_to_attr_kind(self):
        spans = [_execute_span("stray", 1.0, 2.0, job_kind="mystery")]
        slos = compute_slo([], spans)
        assert slos["mystery"]["execute"].snapshot()["count"] == 1

    def test_failed_job_has_no_e2e(self):
        events = _events()[:6]  # job b fails and is never resubmitted
        slos = compute_slo(events, [])
        assert "e2e" not in slos["fit"]
        assert slos["fit"]["queue_wait"].snapshot()["count"] == 1

    def test_pre_plane_resubmit_contributes_no_latency_samples(self):
        # With submit_t reset to None by an untimestamped resubmit, the
        # later timestamped lease/done must not manufacture queue_wait or
        # e2e samples against the long-gone original submission.
        events = [
            {"ev": "submit", "id": "b", "t": 100.0, "spec": {"kind": "fit"}},
            {"ev": "lease", "id": "b", "t": 102.0, "worker": "w1"},
            {"ev": "fail", "id": "b", "t": 103.0, "worker": "w1"},
            {"ev": "submit", "id": "b", "spec": {"kind": "fit"}},  # no t
            {"ev": "lease", "id": "b", "t": 203.0, "worker": "w0"},
            {"ev": "done", "id": "b", "t": 210.0, "worker": "w0"},
        ]
        slos = compute_slo(events, [])
        assert "queue_wait" not in slos.get("fit", {})
        assert "e2e" not in slos.get("fit", {})

    def test_histograms_use_fixed_slo_buckets(self):
        slos = compute_slo(_events(), [])
        hist = slos["sweep"]["queue_wait"]
        assert tuple(hist.snapshot()["buckets"]) == SLO_BUCKETS


class TestReporting:
    def test_snapshot_shape(self):
        snap = slo_snapshot(compute_slo(_events(), [
            _execute_span("a", 101.25, 3.5)]))
        assert set(snap) == {"sweep", "fit"}
        for cell in snap["sweep"].values():
            assert set(cell) == {"count", "p50", "p95", "p99", "mean", "max"}
        assert set(snap["sweep"]) <= set(SLO_METRICS)

    def test_render_lists_every_populated_metric(self):
        text = render_slo_report(
            compute_slo(_events(), [_execute_span("a", 101.25, 3.5)]),
            title="drill SLOs")
        assert text.startswith("drill SLOs")
        for metric in SLO_METRICS:
            assert metric in text

    def test_render_empty(self):
        assert "(no completed jobs to report)" in render_slo_report({})
