"""Metrics registry: counters, gauges, histogram bucket math, export.

The histogram properties run under hypothesis when it is installed and fall
back to a fixed seeded-random sweep otherwise, so the bucket math stays
property-tested even in minimal environments.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)

try:
    from hypothesis import given, settings, strategies as st

    def seeds(n_examples: int = 40, max_seed: int = 10**6):
        """Feed the test a shrinkable integer seed via hypothesis."""

        def deco(fn):
            return settings(max_examples=n_examples, deadline=None)(
                given(st.integers(0, max_seed))(fn)
            )

        return deco

except ImportError:  # pragma: no cover - exercised only without hypothesis

    def seeds(n_examples: int = 40, max_seed: int = 10**6):
        """Fallback: a fixed, seeded sweep of random example seeds."""
        picker = random.Random(20260806)
        chosen = [picker.randrange(max_seed + 1) for _ in range(n_examples)]

        def deco(fn):
            return pytest.mark.parametrize("seed", chosen)(fn)

        return deco


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("tasks")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("tasks").inc(-1)

    def test_snapshot(self):
        c = Counter("tasks")
        c.inc(4)
        assert c.snapshot() == {"type": "counter", "value": 4.0}


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("entries")
        g.set(10)
        g.inc(-3)
        assert g.value == 7.0
        assert g.snapshot() == {"type": "gauge", "value": 7.0}


class TestHistogramUnit:
    def test_rejects_empty_or_unsorted_bounds(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", buckets=())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 1.0, 2.0))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            Histogram("h").observe(float("nan"))

    def test_boundary_value_lands_in_its_bucket(self):
        # v == bound goes into that bound's bucket (le semantics).
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(2.0001)
        assert h.bucket_counts() == [1, 1]
        assert h.cumulative_counts() == [1, 2, 3]

    def test_empty_histogram_stats(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        snap = h.snapshot()
        assert snap["min"] is None and snap["max"] is None

    def test_quantile_bounds(self):
        h = Histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.7, 50.0):
            h.observe(v)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        assert h.quantile(0.25) == 0.1
        assert h.quantile(0.75) == 1.0
        # Overflow quantile reports the recorded max, not +Inf.
        assert h.quantile(1.0) == 50.0


class TestHistogramProperties:
    @seeds()
    def test_counts_partition_observations(self, seed):
        """Every observation lands in exactly one bucket (incl. overflow)."""
        rng = np.random.default_rng(seed)
        h = Histogram("h")
        values = rng.uniform(0.0, 400.0, size=rng.integers(1, 200))
        for v in values:
            h.observe(float(v))
        assert sum(h.bucket_counts()) + h.snapshot()["overflow"] == len(values)
        assert h.count == len(values)

    @seeds()
    def test_observation_lands_in_correct_bucket(self, seed):
        """Bucket i holds exactly the values in (bound[i-1], bound[i]]."""
        rng = np.random.default_rng(seed)
        h = Histogram("h")
        values = [float(v) for v in rng.uniform(0.0, 400.0, size=50)]
        for v in values:
            h.observe(v)
        bounds = h.buckets
        for i, count in enumerate(h.bucket_counts()):
            lo = bounds[i - 1] if i else float("-inf")
            expected = sum(1 for v in values if lo < v <= bounds[i])
            assert count == expected, f"bucket {i} ({lo}, {bounds[i]}]"
        overflow = sum(1 for v in values if v > bounds[-1])
        assert h.snapshot()["overflow"] == overflow

    @seeds()
    def test_cumulative_counts_monotone_and_total(self, seed):
        rng = np.random.default_rng(seed)
        h = Histogram("h")
        n = int(rng.integers(1, 100))
        for v in rng.exponential(5.0, size=n):
            h.observe(float(v))
        cum = h.cumulative_counts()
        assert len(cum) == len(DEFAULT_BUCKETS) + 1
        assert all(b >= a for a, b in zip(cum, cum[1:]))
        assert cum[-1] == n

    @seeds(n_examples=25)
    def test_sum_mean_min_max_consistent(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(0.0, 10.0, size=int(rng.integers(1, 60)))
        h = Histogram("h")
        for v in values:
            h.observe(float(v))
        assert h.sum == pytest.approx(values.sum())
        assert h.mean == pytest.approx(values.mean())
        snap = h.snapshot()
        assert snap["min"] == pytest.approx(values.min())
        assert snap["max"] == pytest.approx(values.max())


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="already registered as a counter"):
            reg.gauge("a")

    def test_snapshot_sorted_and_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.gauge("a.first").set(2)
        reg.histogram("m.mid").observe(0.3)
        assert list(reg.snapshot()) == ["a.first", "m.mid", "z.last"]
        assert reg.to_json() == reg.to_json()

    def test_to_json_schema_and_extra(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        doc = json.loads(reg.to_json(extra={"cache": {"enabled": True}}))
        assert doc["schema"] == "repro-metrics/1"
        assert doc["metrics"]["hits"]["value"] == 3.0
        assert doc["cache"] == {"enabled": True}

    def test_export_creates_parents(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        out = tmp_path / "deep" / "metrics.json"
        reg.export(out)
        assert json.loads(out.read_text())["metrics"]["hits"]["value"] == 1.0

    def test_render_table_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        reg.histogram("lat").observe(0.02)
        table = reg.render_table(title="metrics")
        assert "metrics" in table and "hits" in table and "lat" in table
        assert "count=1" in table

    def test_reset_empties(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.reset()
        assert len(reg) == 0

    def test_default_registry_singleton_and_reset(self):
        a = default_registry()
        assert default_registry() is a
        reset_default_registry()
        assert default_registry() is not a
