"""Span tracing: record schema, nesting, error capture, no-op fast path."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACE_SCHEMA, Tracer, validate_record


def _records(stream: io.StringIO) -> list[dict]:
    return [validate_record(json.loads(line))
            for line in stream.getvalue().splitlines() if line.strip()]


def _valid_record(**overrides) -> dict:
    rec = {
        "schema": TRACE_SCHEMA,
        "kind": "span",
        "span_id": 1,
        "parent_id": None,
        "name": "train",
        "t_wall": 1000.0,
        "t_start": 0.5,
        "duration_s": 0.25,
        "status": "ok",
        "error": None,
        "attrs": {"model": "NN-Q"},
    }
    rec.update(overrides)
    return rec


class TestValidateRecord:
    def test_accepts_valid_span_and_event(self):
        assert validate_record(_valid_record())["name"] == "train"
        assert validate_record(_valid_record(kind="event", duration_s=0.0))

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="must be an object"):
            validate_record([1, 2])

    @pytest.mark.parametrize("field", [
        "schema", "kind", "span_id", "parent_id", "name", "t_wall",
        "t_start", "duration_s", "status", "error", "attrs",
    ])
    def test_missing_field_named_in_error(self, field):
        rec = _valid_record()
        del rec[field]
        with pytest.raises(ValueError, match=f"missing field '{field}'"):
            validate_record(rec)

    def test_wrong_type_named_in_error(self):
        with pytest.raises(ValueError, match="'span_id' has type str"):
            validate_record(_valid_record(span_id="7"))

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unknown trace schema"):
            validate_record(_valid_record(schema="repro-trace/999"))

    def test_bad_kind_and_status_rejected(self):
        with pytest.raises(ValueError, match="span|event"):
            validate_record(_valid_record(kind="metric"))
        with pytest.raises(ValueError, match="ok|error"):
            validate_record(_valid_record(status="maybe"))

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration_s"):
            validate_record(_valid_record(duration_s=-0.1))

    def test_error_status_requires_payload(self):
        with pytest.raises(ValueError, match="no error payload"):
            validate_record(_valid_record(status="error", error=None))
        assert validate_record(_valid_record(
            status="error", error={"type": "ValueError", "message": "boom"}
        ))


class TestTracer:
    def test_span_records_are_schema_valid(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream)
        with tracer.span("sweep", app="gcc") as sp:
            sp.set(n_configs=4608)
        (rec,) = _records(stream)
        assert rec["name"] == "sweep"
        assert rec["parent_id"] is None
        assert rec["status"] == "ok"
        assert rec["attrs"] == {"app": "gcc", "n_configs": 4608}
        assert rec["duration_s"] >= 0

    def test_nesting_sets_parent_ids(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream)
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                pass
        recs = {r["name"]: r for r in _records(stream)}
        outer_id = recs["outer"]["span_id"]
        assert recs["outer"]["parent_id"] is None
        assert recs["inner-a"]["parent_id"] == outer_id
        assert recs["inner-b"]["parent_id"] == outer_id
        # Children close (and are written) before the parent.
        names = [r["name"] for r in _records(stream)]
        assert names.index("inner-a") < names.index("outer")

    def test_exception_captured_and_propagated(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream)
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("train", model="NN-Q"):
                raise RuntimeError("boom")
        (rec,) = _records(stream)
        assert rec["status"] == "error"
        assert rec["error"] == {"type": "RuntimeError", "message": "boom"}

    def test_annotate_writes_zero_duration_event(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream)
        with tracer.span("run"):
            tracer.annotate("cache-snapshot", hits=3)
        recs = {r["name"]: r for r in _records(stream)}
        event = recs["cache-snapshot"]
        assert event["kind"] == "event"
        assert event["duration_s"] == 0.0
        assert event["parent_id"] == recs["run"]["span_id"]
        assert event["attrs"] == {"hits": 3}

    def test_spans_feed_metrics_registry(self):
        reg = MetricsRegistry()
        tracer = Tracer(stream=io.StringIO(), registry=reg)
        with tracer.span("train"):
            pass
        with pytest.raises(ValueError):
            with tracer.span("train"):
                raise ValueError("bad fit")
        hist = reg.get("span.train.seconds")
        assert hist is not None and hist.count == 2
        assert reg.get("span.train.errors").value == 1

    def test_threads_nest_independently(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream)
        done = threading.Event()

        def worker():
            with tracer.span("worker-span"):
                done.wait(5)

        with tracer.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            done.set()
            t.join()
        recs = {r["name"]: r for r in _records(stream)}
        # The worker's span opened while main-span was live on *this* thread,
        # but stacks are per-thread, so it is still a root span.
        assert recs["worker-span"]["parent_id"] is None

    def test_file_sink_appends_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=path)
        with tracer.span("a"):
            pass
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert validate_record(json.loads(lines[0]))["name"] == "a"


class TestModuleLevelApi:
    def test_disabled_span_is_shared_noop(self):
        assert not trace.tracing_enabled()
        cm = trace.span("anything", attr=1)
        assert cm is trace._NULL_SPAN
        with cm as sp:
            sp.set(ignored=True)  # must not raise
        trace.annotate("ignored")  # no-op, must not raise

    def test_configure_and_shutdown(self):
        stream = io.StringIO()
        trace.configure(stream=stream)
        assert trace.tracing_enabled()
        with trace.span("phase"):
            pass
        trace.shutdown()
        assert not trace.tracing_enabled()
        assert trace.get_tracer() is None
        (rec,) = _records(stream)
        assert rec["name"] == "phase"

    def test_configure_replaces_previous_tracer(self):
        first = trace.configure(stream=io.StringIO())
        second = trace.configure(stream=io.StringIO())
        assert trace.get_tracer() is second
        assert second is not first
