"""Profiling hooks: opt-in gating, section totals, nested-section safety."""

from __future__ import annotations

from repro.obs import profiling
from repro.obs.profiling import (
    Profiler,
    disable_profiling,
    enable_profiling,
    get_profiler,
    profiled,
    profiling_enabled,
)


def _busy(n: int = 2_000) -> int:
    return sum(i * i for i in range(n))


class TestGating:
    def test_disabled_by_default(self):
        assert not profiling_enabled()
        assert get_profiler() is None
        assert profiled("sweep") is profiling._NULL_SECTION

    def test_enable_disable_roundtrip(self):
        p = enable_profiling()
        assert profiling_enabled()
        assert enable_profiling() is p  # idempotent
        disable_profiling()
        assert not profiling_enabled()


class TestSections:
    def test_sections_accumulate_calls_and_time(self):
        p = enable_profiling()
        for _ in range(3):
            with profiled("train"):
                _busy()
        entry = p.sections["train"]
        assert entry["calls"] == 3
        assert entry["seconds"] > 0

    def test_nested_sections_do_not_reenable_cprofile(self):
        # cProfile.enable() while already profiling raises; the depth
        # counter must make the inner section a wall-clock-only timer.
        p = enable_profiling()
        with profiled("sweep"):
            with profiled("encode"):
                _busy()
        assert p.sections["sweep"]["calls"] == 1
        assert p.sections["encode"]["calls"] == 1

    def test_exception_still_records_section(self):
        p = enable_profiling()
        try:
            with profiled("train"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert p.sections["train"]["calls"] == 1
        assert not p._depth  # profiler released

    def test_report_lists_sections_and_functions(self):
        enable_profiling()
        with profiled("sweep"):
            _busy()
        report = get_profiler().report(top=5)
        assert "profiled sections" in report
        assert "sweep" in report
        assert "cumulative" in report  # pstats section present

    def test_fresh_profiler_has_no_sections(self):
        assert Profiler().sections == {}
