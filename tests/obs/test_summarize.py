"""Trace summarization: aggregation, malformed-line tolerance, rendering."""

from __future__ import annotations

import json

import pytest

from repro.obs.summarize import (
    phase_rows,
    read_jsonl_tolerant,
    read_trace,
    render_summary,
    summarize_file,
    summarize_trace,
)
from repro.obs.trace import Tracer


def _write_trace(path):
    """A small two-phase trace with one error span and one event."""
    tracer = Tracer(path=path)
    with tracer.span("sweep", app="gcc"):
        with tracer.span("encode"):
            pass
        with tracer.span("encode"):
            pass
    with pytest.raises(ValueError):
        with tracer.span("train", model="NN-Q"):
            raise ValueError("diverged")
    tracer.annotate("cache-snapshot", hits=1)
    tracer.close()


class TestReadTrace:
    def test_reads_valid_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        records, malformed = read_trace(path)
        assert malformed == 0
        assert len(records) == 5  # 4 spans + 1 event

    def test_malformed_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        with open(path, "a") as fh:
            fh.write("{not json at all\n")
            fh.write(json.dumps({"schema": "wrong/1"}) + "\n")
            fh.write("\n")  # blank lines are not malformed
        records, malformed = read_trace(path)
        assert len(records) == 5
        assert malformed == 2


class TestReadJsonlTolerant:
    """A SIGKILL can tear the final line anywhere — even mid-UTF-8-byte."""

    def test_torn_json_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"ok": 1}) + "\n" + '{"ev": "sub')
        records, malformed = read_jsonl_tolerant(path)
        assert records == [{"ok": 1}]
        assert malformed == 1

    def test_tail_torn_mid_utf8_sequence(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps({"ok": 1}).encode() + b"\n"
        torn = json.dumps({"msg": "café"}).encode()[:-3]  # split é
        path.write_bytes(good + torn)
        records, malformed = read_jsonl_tolerant(path)
        assert records == [{"ok": 1}]
        assert malformed == 1

    def test_non_dict_lines_counted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('[1, 2]\n"str"\n{"ok": 1}\n\n')
        records, malformed = read_jsonl_tolerant(path)
        assert records == [{"ok": 1}]
        assert malformed == 2  # blank lines are fine, non-dicts are not

    def test_malformed_lines_increment_reader_counter(self, tmp_path):
        from repro.obs import default_registry
        path = tmp_path / "t.jsonl"
        path.write_text("{torn\n")
        read_jsonl_tolerant(path)
        counters = default_registry().snapshot()
        assert counters["obs.reader.malformed_lines"]["value"] == 1

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b"")
        assert read_jsonl_tolerant(path) == ([], 0)


class TestSummarize:
    def test_phase_aggregation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        summary = summarize_trace(*read_trace(path))
        assert summary.n_spans == 4
        assert summary.n_events == 1
        encode = summary.phase("encode")
        assert encode.count == 2
        assert encode.total_s == pytest.approx(encode.mean_s * 2)
        assert encode.min_s <= encode.max_s
        assert summary.phase("train").errors == 1
        assert summary.phase("sweep").errors == 0
        with pytest.raises(KeyError):
            summary.phase("no-such-phase")

    def test_phases_sorted_hottest_first(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        summary = summarize_trace(*read_trace(path))
        totals = [p.total_s for p in summary.phases]
        assert totals == sorted(totals, reverse=True)

    def test_render_and_summarize_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        text = summarize_file(path)
        assert str(path) in text
        assert "4 spans, 1 events" in text
        for phase in ("sweep", "encode", "train"):
            assert phase in text

    def test_render_reports_malformed_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        with open(path, "a") as fh:
            fh.write("garbage\n")
        summary = summarize_trace(*read_trace(path))
        assert "1 malformed lines skipped" in render_summary(summary)

    def test_phase_rows_json_friendly(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        rows = phase_rows(summarize_trace(*read_trace(path)))
        assert {r["phase"] for r in rows} == {"sweep", "encode", "train"}
        json.dumps(rows)  # must serialize as-is
        for row in rows:
            assert set(row) == {"phase", "count", "total_s", "mean_s",
                                "min_s", "max_s", "errors"}
