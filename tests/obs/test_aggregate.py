"""Cross-shard merge: timelines, span-id rebasing, metrics aggregation."""

from __future__ import annotations

import json

import pytest

from repro.obs.aggregate import (
    METRICS_AGG_SCHEMA,
    SHARD_METRICS_SCHEMA,
    aggregate_metrics,
    merge_timeline,
    metrics_dir,
    obs_dir,
    read_shard_metrics,
    read_shard_traces,
    read_spool_events,
    snapshot_quantile,
    spool_timeline_records,
    write_timeline,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, validate_record


def _write_shard_trace(root, shard, names, t0=100.0):
    """Hand-rolled trace file: one root span per name, ids from 1."""
    path = obs_dir(root) / f"trace.{shard}.jsonl"
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        for i, name in enumerate(names):
            fh.write(json.dumps({
                "schema": "repro-trace/1", "kind": "span",
                "span_id": i + 1, "parent_id": 1 if i else None,
                "name": name, "t_wall": t0 + i, "t_start": float(i),
                "duration_s": 0.5, "status": "ok", "error": None,
                "trace_id": f"job-{shard}", "attrs": {},
            }) + "\n")
    return path


def _spool_events():
    return [
        {"ev": "submit", "id": "j1", "t": 10.0, "trace_id": "j1",
         "spec": {"kind": "sweep"}},
        {"ev": "lease", "id": "j1", "t": 11.0, "worker": "w0"},
        {"ev": "done", "id": "j1", "t": 12.0, "worker": "w0"},
        {"ev": "submit", "id": "j2", "t": 10.5, "trace_id": "j2",
         "spec": {"kind": "fit"}},
        {"ev": "fail", "id": "j2", "t": 13.0, "worker": "w1",
         "error_type": "ReproError", "message": "boom"},
    ]


class TestReadShardTraces:
    def test_tags_shard_and_rebases_ids(self, tmp_path):
        _write_shard_trace(tmp_path, "w0", ["a", "b"])
        _write_shard_trace(tmp_path, "w1", ["c", "d"])
        records, malformed = read_shard_traces(tmp_path)
        assert malformed == 0
        assert [r["shard"] for r in records] == ["w0", "w0", "w1", "w1"]
        # ids unique across shards; intra-shard parent links preserved
        assert [r["span_id"] for r in records] == [1, 2, 3, 4]
        assert records[1]["parent_id"] == 1
        assert records[3]["parent_id"] == 3

    def test_schema_violations_counted_not_fatal(self, tmp_path):
        path = _write_shard_trace(tmp_path, "w0", ["a"])
        with open(path, "a") as fh:
            fh.write(json.dumps({"schema": "repro-trace/1"}) + "\n")
            fh.write("{torn\n")
        records, malformed = read_shard_traces(tmp_path)
        assert len(records) == 1
        assert malformed == 2

    def test_missing_obs_dir_is_empty(self, tmp_path):
        assert read_shard_traces(tmp_path) == ([], 0)


class TestSpoolTimeline:
    def test_records_are_schema_valid_events(self):
        out = spool_timeline_records(_spool_events(), next_id=7)
        assert [r["name"] for r in out] == [
            "spool.submit", "spool.lease", "spool.done", "spool.submit",
            "spool.fail"]
        assert [r["span_id"] for r in out] == [7, 8, 9, 10, 11]
        for rec in out:
            validate_record({k: v for k, v in rec.items() if k != "shard"})
            assert rec["shard"] == "spool"

    def test_fail_carries_error_and_status(self):
        fail = spool_timeline_records(_spool_events())[-1]
        assert fail["status"] == "error"
        assert fail["error"] == {"type": "ReproError", "message": "boom"}

    def test_trace_id_from_submit_with_job_id_fallback(self):
        events = [
            {"ev": "submit", "id": "j1", "t": 1.0, "trace_id": "custom"},
            {"ev": "lease", "id": "j1", "t": 2.0},
            {"ev": "lease", "id": "orphan", "t": 3.0},  # no submit seen
        ]
        out = spool_timeline_records(events)
        assert [r["trace_id"] for r in out] == ["custom", "custom", "orphan"]

    def test_pre_plane_events_without_t_skipped(self):
        out = spool_timeline_records([{"ev": "lease", "id": "j1"},
                                      {"ev": "hb", "id": "j1", "t": 5.0}])
        assert out == []


class TestMergeTimeline:
    def _build(self, tmp_path):
        with open(tmp_path / "spool.jsonl", "w") as fh:
            for ev in _spool_events():
                fh.write(json.dumps(ev) + "\n")
        _write_shard_trace(tmp_path, "w0", ["job.execute"], t0=11.5)
        _write_shard_trace(tmp_path, "w1", ["job.execute"], t0=12.5)
        return merge_timeline(tmp_path)

    def test_ordered_by_wall_clock(self, tmp_path):
        timeline = self._build(tmp_path)
        walls = [r["t_wall"] for r in timeline.records]
        assert walls == sorted(walls)
        assert timeline.shards == ("w0", "w1")
        assert timeline.n_spans == 2
        assert timeline.n_spool_events == 5
        assert timeline.n_malformed == 0

    def test_for_trace_and_summary(self, tmp_path):
        timeline = self._build(tmp_path)
        j1 = timeline.for_trace("j1")
        assert [r["name"] for r in j1] == ["spool.submit", "spool.lease",
                                          "spool.done"]
        assert "2 spans" in timeline.summary()
        assert "2 shard(s)" in timeline.summary()

    def test_write_timeline_roundtrips(self, tmp_path):
        timeline = self._build(tmp_path)
        out = write_timeline(timeline, tmp_path / "merged.jsonl")
        lines = [json.loads(x) for x in out.read_text().splitlines()]
        assert lines == [json.loads(json.dumps(r, sort_keys=True))
                         for r in timeline.records]

    def test_empty_spool_root(self, tmp_path):
        timeline = merge_timeline(tmp_path)
        assert timeline.records == ()
        assert read_spool_events(tmp_path) == ([], 0)

    def test_tracer_output_merges(self, tmp_path):
        """Real Tracer files (not hand-rolled) survive the merge path."""
        path = obs_dir(tmp_path) / "trace.w9.jsonl"
        path.parent.mkdir(parents=True)
        tracer = Tracer(path=path)
        with tracer.span("job.execute", job_id="x"):
            pass
        tracer.close()
        timeline = merge_timeline(tmp_path)
        assert timeline.n_spans == 1
        assert timeline.records[0]["shard"] == "w9"


def _snapshot_doc(shard, pid, t, n=3, final=False):
    reg = MetricsRegistry()
    reg.counter("jobs.done").inc(n)
    reg.gauge("queue.depth").set(float(n))
    for i in range(n):
        reg.histogram("fit.seconds").observe(0.01 * (i + 1))
    return {"schema": SHARD_METRICS_SCHEMA, "shard": shard, "pid": pid,
            "t": t, "final": final, "metrics": reg.snapshot()}


class TestReadShardMetrics:
    def test_dedup_keeps_newest_per_shard_pid(self, tmp_path):
        mdir = metrics_dir(tmp_path)
        mdir.mkdir(parents=True)
        (mdir / "w0.json").write_text(
            json.dumps(_snapshot_doc("w0", 42, t=200.0, n=5)))
        # salvaged older generation of the same (shard, pid)
        (mdir / "w0.g1.json").write_text(
            json.dumps(_snapshot_doc("w0", 42, t=100.0, n=2)))
        docs, unreadable = read_shard_metrics(tmp_path)
        assert unreadable == 0
        assert len(docs) == 1
        assert docs[0]["metrics"]["jobs.done"]["value"] == 5

    def test_distinct_pids_both_kept(self, tmp_path):
        mdir = metrics_dir(tmp_path)
        mdir.mkdir(parents=True)
        (mdir / "w0.json").write_text(
            json.dumps(_snapshot_doc("w0", 43, t=200.0, n=1)))
        (mdir / "w0.g1.json").write_text(
            json.dumps(_snapshot_doc("w0", 42, t=100.0, n=2)))
        docs, _ = read_shard_metrics(tmp_path)
        assert len(docs) == 2

    def test_bare_legacy_snapshot_wrapped(self, tmp_path):
        mdir = metrics_dir(tmp_path)
        mdir.mkdir(parents=True)
        reg = MetricsRegistry()
        reg.counter("c").inc()
        (mdir / "old.json").write_text(json.dumps(reg.snapshot()))
        docs, _ = read_shard_metrics(tmp_path)
        assert docs[0]["shard"] == "old"
        assert docs[0]["pid"] is None
        assert docs[0]["metrics"]["c"]["value"] == 1

    def test_unreadable_files_counted(self, tmp_path):
        mdir = metrics_dir(tmp_path)
        mdir.mkdir(parents=True)
        (mdir / "bad.json").write_text("{torn")
        (mdir / "list.json").write_text("[1, 2]")
        docs, unreadable = read_shard_metrics(tmp_path)
        assert docs == []
        assert unreadable == 2

    def test_missing_dir_is_empty(self, tmp_path):
        assert read_shard_metrics(tmp_path) == ([], 0)


class TestAggregateMetrics:
    def test_counters_gauges_sum_histograms_merge(self):
        agg = aggregate_metrics([_snapshot_doc("w0", 1, 10.0, n=2),
                                 _snapshot_doc("w1", 2, 11.0, n=3)])
        assert agg["schema"] == METRICS_AGG_SCHEMA
        assert agg["shards"] == ["w0@1", "w1@2"]
        assert agg["metrics"]["jobs.done"]["value"] == 5
        assert agg["metrics"]["queue.depth"]["value"] == 5.0
        hist = agg["metrics"]["fit.seconds"]
        assert hist["count"] == 5
        assert hist["sum"] == pytest.approx(0.01 + 0.02 + 0.01 + 0.02 + 0.03)
        assert hist["mean"] == pytest.approx(hist["sum"] / 5)
        assert hist["max"] == pytest.approx(0.03)
        assert agg["conflicts"] == []
        assert set(agg["per_shard"]) == {"w0@1", "w1@2"}

    def test_type_conflict_recorded_first_shard_wins(self):
        a = _snapshot_doc("w0", 1, 10.0)
        b = _snapshot_doc("w1", 2, 11.0)
        b["metrics"]["jobs.done"] = {"type": "gauge", "value": 9.0}
        agg = aggregate_metrics([a, b])
        assert agg["conflicts"] == ["jobs.done"]
        assert agg["metrics"]["jobs.done"]["type"] == "counter"
        assert agg["metrics"]["jobs.done"]["value"] == 3

    def test_bucket_conflict_recorded(self):
        a = _snapshot_doc("w0", 1, 10.0)
        b = _snapshot_doc("w1", 2, 11.0)
        b["metrics"]["fit.seconds"]["buckets"] = [1.0, 2.0]
        agg = aggregate_metrics([a, b])
        assert agg["conflicts"] == ["fit.seconds"]

    def test_aggregate_is_json_serializable(self):
        json.dumps(aggregate_metrics([_snapshot_doc("w0", 1, 10.0)]))


class TestSnapshotQuantile:
    def test_matches_live_histogram_quantile(self):
        from repro.obs.metrics import Histogram
        hist = Histogram("fit.seconds")
        for v in (0.01, 0.02, 0.03):
            hist.observe(v)
        snap = hist.snapshot()
        for q in (0.0, 0.5, 0.95, 1.0):
            assert snapshot_quantile(snap, q) == hist.quantile(q)

    def test_empty_and_invalid(self):
        assert snapshot_quantile({"count": 0}, 0.5) == 0.0
        with pytest.raises(ValueError):
            snapshot_quantile({"count": 1, "buckets": [], "counts": []}, 1.5)

    def test_overflow_returns_max(self):
        snap = {"count": 1, "buckets": [1.0], "counts": [0], "max": 7.5}
        assert snapshot_quantile(snap, 1.0) == 7.5
