"""Obs tests mutate process-global observability state; isolate each test."""

from __future__ import annotations

import pytest

from repro.obs import disable_profiling, reset_default_registry, shutdown


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Fresh tracer/registry/profiler before and after every obs test."""
    shutdown()
    disable_profiling()
    reset_default_registry()
    yield
    shutdown()
    disable_profiling()
    reset_default_registry()
