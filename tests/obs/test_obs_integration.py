"""End-to-end observability: phase() composition, instrumented pipeline runs,
the traced CLI contract, and the disabled-by-default bit-identity guarantee.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core.models import model_builders
from repro.core.sampled import run_sampled_dse
from repro.obs import phase, read_trace, summarize_trace
from repro.obs.trace import validate_record


class TestPhaseComposition:
    def test_phase_is_noop_when_everything_off(self):
        assert phase("sweep", app="gcc") is obs.trace._NULL_SPAN

    def test_phase_opens_span_and_profile_section(self):
        stream = io.StringIO()
        obs.configure(stream=stream)
        profiler = obs.enable_profiling()
        with phase("train", model="LR-B") as sp:
            sp.set(n_records=7)
        obs.shutdown()
        (rec,) = [validate_record(json.loads(line))
                  for line in stream.getvalue().splitlines()]
        assert rec["name"] == "train"
        assert rec["attrs"] == {"model": "LR-B", "n_records": 7}
        assert profiler.sections["train"]["calls"] == 1

    def test_phase_works_with_profiling_only(self):
        profiler = obs.enable_profiling()
        with phase("encode"):
            pass
        assert profiler.sections["encode"]["calls"] == 1


class TestInstrumentedPipeline:
    def test_sampled_dse_traced_output_is_bit_identical(self, space_dataset):
        """Tracing must observe the pipeline, never perturb it."""
        space = space_dataset("gcc")
        builders = model_builders(("LR-B", "LR-E"))

        plain = run_sampled_dse(space, builders, 0.01,
                                np.random.default_rng(7), n_cv_reps=2)
        obs.configure(stream=io.StringIO(), registry=obs.default_registry())
        traced = run_sampled_dse(space, builders, 0.01,
                                 np.random.default_rng(7), n_cv_reps=2)
        obs.shutdown()

        assert traced.select_label == plain.select_label
        for label in builders:
            assert traced.outcomes[label].true_error == plain.outcomes[label].true_error
            assert traced.outcomes[label].estimate.per_rep == \
                plain.outcomes[label].estimate.per_rep

    def test_pipeline_spans_nest_under_driver(self, space_dataset):
        stream = io.StringIO()
        obs.configure(stream=stream)
        run_sampled_dse(space_dataset("gcc"), model_builders(("LR-B",)),
                        0.01, np.random.default_rng(0), n_cv_reps=2)
        obs.shutdown()
        records = [validate_record(json.loads(line))
                   for line in stream.getvalue().splitlines()]
        by_name = {}
        for rec in records:
            by_name.setdefault(rec["name"], []).append(rec)
        root = by_name["sampled-dse"][0]
        assert root["parent_id"] is None
        for child in ("holdout", "train", "predict"):
            assert all(r["parent_id"] == root["span_id"] for r in by_name[child])


class TestTracedCli:
    """Acceptance: a traced CLI run emits schema-valid spans covering the
    sweep, encode, train, predict, and holdout phases."""

    REQUIRED_PHASES = ("sweep", "encode", "train", "predict", "holdout")

    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("obs-cli")
        trace_file = out / "trace.jsonl"
        metrics_file = out / "metrics.json"
        rc = main([
            "sampled-dse", "gcc", "--rates", "0.01",
            "--models", "LR-B", "LR-E", "--cv-reps", "2",
            "--trace-file", str(trace_file),
            "--metrics-file", str(metrics_file),
        ])
        return rc, trace_file, metrics_file

    def test_run_succeeds(self, traced_run):
        rc, trace_file, metrics_file = traced_run
        assert rc == 0
        assert trace_file.exists() and metrics_file.exists()

    def test_every_line_is_schema_valid(self, traced_run):
        _, trace_file, _ = traced_run
        lines = [ln for ln in trace_file.read_text().splitlines() if ln.strip()]
        assert lines
        for line in lines:
            validate_record(json.loads(line))  # raises on any violation

    def test_all_pipeline_phases_covered(self, traced_run):
        _, trace_file, _ = traced_run
        summary = summarize_trace(*read_trace(trace_file))
        present = {p.name for p in summary.phases}
        for required in self.REQUIRED_PHASES:
            assert required in present, f"phase {required!r} missing from trace"
            assert summary.phase(required).errors == 0

    def test_trace_ends_with_cache_snapshot_event(self, traced_run):
        _, trace_file, _ = traced_run
        records, malformed = read_trace(trace_file)
        assert malformed == 0
        events = [r for r in records if r["kind"] == "event"]
        assert events and events[-1]["name"] == "cache-snapshot"

    def test_metrics_file_has_span_histograms_and_cache_section(self, traced_run):
        _, _, metrics_file = traced_run
        doc = json.loads(metrics_file.read_text())
        assert doc["schema"] == "repro-metrics/1"
        for required in self.REQUIRED_PHASES:
            name = f"span.{required}.seconds"
            assert name in doc["metrics"], f"{name} missing"
            assert doc["metrics"][name]["count"] >= 1
        # Satellite fix: the final cache-counter snapshot rides in the export,
        # so `repro cache stats` and --metrics-file agree on the vocabulary.
        assert "cache" in doc
        assert "result_cache" in doc["cache"]
        assert "encoder_matrix_cache" in doc["cache"]

    def test_obs_summarize_command_renders_run(self, traced_run, capsys):
        _, trace_file, _ = traced_run
        assert main(["obs", "summarize", str(trace_file)]) == 0
        text = capsys.readouterr().out
        for required in self.REQUIRED_PHASES:
            assert required in text

    def test_obs_summarize_missing_file_fails_cleanly(self, capsys):
        assert main(["obs", "summarize", "/no/such/trace.jsonl"]) != 0
        assert "no such trace file" in capsys.readouterr().err


class TestProfiledCli:
    def test_profile_flag_reports_sections(self, capsys):
        assert main(["sweep", "mcf", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "profiled sections" in err
        assert "sweep" in err
        assert not obs.profiling_enabled()  # CLI tears profiling down
