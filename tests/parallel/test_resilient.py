"""Tests for the fault-tolerant execution layer.

Covers every resilience mechanism: retry with deterministic backoff,
per-task timeouts, checkpoint/resume (bit-identical to uninterrupted serial
runs), worker-crash recovery (pool rebuild then serial downgrade), and the
seeded failure-injection harness itself.
"""

import pickle
import time

import numpy as np
import pytest

from repro.errors import InjectedFault, SweepAborted, TaskTimeout
from repro.parallel import (
    CheckpointJournal,
    FaultInjector,
    ProcessExecutor,
    ResilientExecutor,
    RetryPolicy,
    task_fingerprint,
)

NO_BACKOFF = RetryPolicy(max_attempts=3, backoff_base=0.0)


def _double(x):
    return x * 2


def _third(x):
    # Exercises float results end-to-end (journal round-trip included).
    return x / 3.0


def _sleep_on_two(x):
    if x == 2:
        time.sleep(30)
    return x * 2


class _LoggingThird:
    """`x / 3` that appends every execution to a log file.

    The class-level ``__qualname__`` is what :func:`task_fingerprint` hashes,
    so instances with different log paths still produce identical task
    fingerprints — letting resume tests count real executions.
    """

    def __init__(self, log_path):
        self.log_path = str(log_path)

    def __call__(self, x):
        with open(self.log_path, "a") as fh:
            fh.write(f"{x}\n")
        return x / 3.0


def _read_log(path):
    return [int(line) for line in path.read_text().split()] if path.exists() else []


class TestRetryPolicy:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, jitter=0.5)
        d1 = policy.delay(1, seed=42)
        assert d1 == policy.delay(1, seed=42)  # pure in (attempt, seed)
        assert 0.05 <= d1 <= 0.15
        assert policy.delay(3, seed=42) != policy.delay(3, seed=43)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=10.0,
                             backoff_max=5.0, jitter=0.0)
        assert policy.delay(1, 0) == 1.0
        assert policy.delay(2, 0) == 5.0  # capped

    def test_retry_on_filter(self):
        policy = RetryPolicy(retry_on=(ValueError,))
        assert policy.should_retry(ValueError("x"))
        assert not policy.should_retry(RuntimeError("x"))


class TestFingerprint:
    def test_stable_and_distinct(self):
        a = task_fingerprint(_double, 0, (1, 2.5, "x"))
        assert a == task_fingerprint(_double, 0, (1, 2.5, "x"))
        assert a != task_fingerprint(_double, 1, (1, 2.5, "x"))
        assert a != task_fingerprint(_double, 0, (1, 2.5, "y"))
        assert a != task_fingerprint(_third, 0, (1, 2.5, "x"))


class TestSerialResilience:
    def test_plain_map_matches_serial(self):
        with ResilientExecutor() as ex:
            assert ex.map(_double, range(10)) == [2 * i for i in range(10)]

    def test_starmap_passthrough(self):
        with ResilientExecutor() as ex:
            assert ex.starmap(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]

    def test_transient_fault_is_retried(self):
        ex = ResilientExecutor(
            injector=FaultInjector(fail_once_indices=(2, 4)), retry=NO_BACKOFF)
        assert ex.map(_double, range(6)) == [2 * i for i in range(6)]
        assert "retry:2:1" in ex.events and "retry:4:1" in ex.events

    def test_permanent_fault_aborts_with_partials(self):
        ex = ResilientExecutor(
            injector=FaultInjector(fail_indices=(1,)), retry=NO_BACKOFF)
        with pytest.raises(SweepAborted) as ei:
            ex.map(_double, range(4))
        aborted = ei.value
        assert aborted.partial_results == [0, None, 4, 6]
        assert aborted.n_completed == 3
        [failure] = aborted.failures
        assert failure.index == 1 and failure.attempts == 3
        assert failure.kind == "exception"
        assert failure.error_type == "InjectedFault"
        assert "task 1" in str(aborted)

    def test_non_retryable_exception_fails_on_first_attempt(self):
        ex = ResilientExecutor(
            injector=FaultInjector(fail_indices=(0,)),
            retry=RetryPolicy(max_attempts=5, backoff_base=0.0,
                              retry_on=(KeyError,)))
        with pytest.raises(SweepAborted) as ei:
            ex.map(_double, [1])
        assert ei.value.failures[0].attempts == 1

    def test_backoff_sleeps_between_attempts(self):
        slept = []
        ex = ResilientExecutor(
            injector=FaultInjector(fail_once_indices=(0,)),
            retry=RetryPolicy(max_attempts=2, backoff_base=0.2, jitter=0.0),
            sleep=slept.append)
        ex.map(_double, [7])
        assert len(slept) == 1 and 0.0 < slept[0] <= 0.2


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_bit_identical(self, tmp_path):
        """Acceptance criterion: fault at ~50%, resume, compare to serial."""
        path = tmp_path / "sweep.jsonl"
        items = list(range(20))
        reference = [x / 3.0 for x in items]  # uninterrupted serial run

        # Run 1: injected hard fault at the midpoint, no retries.
        ex1 = ResilientExecutor(
            journal=CheckpointJournal(path),
            injector=FaultInjector(fail_indices=(10,)),
            retry=RetryPolicy(max_attempts=1))
        with pytest.raises(SweepAborted) as ei:
            ex1.map(_LoggingThird(tmp_path / "run1.log"), items)
        assert ei.value.checkpointed
        assert ei.value.n_completed == 19  # everything but the fault

        # Run 2: resume. Only the failed task re-runs; results bit-identical.
        log2 = tmp_path / "run2.log"
        ex2 = ResilientExecutor(journal=CheckpointJournal(path, resume=True))
        resumed = ex2.map(_LoggingThird(log2), items)
        assert resumed == reference  # bitwise float equality
        assert _read_log(log2) == [10]  # only the failed task re-executed

    def test_resume_skips_completed_work(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ResilientExecutor(journal=CheckpointJournal(path)) as ex:
            first = ex.map(_LoggingThird(tmp_path / "a.log"), range(8))
        log2 = tmp_path / "b.log"
        with ResilientExecutor(journal=CheckpointJournal(path, resume=True)) as ex:
            again = ex.map(_LoggingThird(log2), range(8))
        assert again == first
        assert _read_log(log2) == []  # nothing re-executed
        assert any(e == "restored:8" for e in ex.events)

    def test_fresh_journal_truncates_stale_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"fp": "junk", "v": "AAAA"}\n')
        journal = CheckpointJournal(path)  # resume=False -> fresh
        assert journal.n_completed == 0
        assert not path.exists()

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ResilientExecutor(journal=CheckpointJournal(path)) as ex:
            ex.map(_double, range(4))
        with open(path, "a") as fh:
            fh.write('{"fp": "abc", "v"')  # crash mid-record
        journal = CheckpointJournal(path, resume=True)
        assert journal.n_completed == 4

    def test_mid_file_corruption_raises(self, tmp_path):
        from repro.errors import CheckpointError

        path = tmp_path / "j.jsonl"
        with ResilientExecutor(journal=CheckpointJournal(path)) as ex:
            ex.map(_double, range(4))
        lines = path.read_text().splitlines()
        lines[1] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="line 2"):
            CheckpointJournal(path, resume=True)

    def test_journal_round_trips_numpy_values(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        value = np.arange(5, dtype=np.float64) / 3.0
        journal.record("fp1", value)
        journal.close()
        loaded = CheckpointJournal(tmp_path / "j.jsonl", resume=True)
        np.testing.assert_array_equal(loaded.completed()["fp1"], value)


class TestFaultInjector:
    def test_deterministic_per_index_and_attempt(self):
        inj = FaultInjector(seed=7, p_exception=0.5)
        outcomes1 = [self._fires(inj, i, 1) for i in range(40)]
        outcomes2 = [self._fires(inj, i, 1) for i in range(40)]
        assert outcomes1 == outcomes2
        assert any(outcomes1) and not all(outcomes1)
        # A different attempt re-rolls: some faults clear on retry.
        retry_outcomes = [self._fires(inj, i, 2) for i in range(40)]
        assert retry_outcomes != outcomes1

    @staticmethod
    def _fires(inj, index, attempt):
        try:
            inj.fire(index, attempt)
            return False
        except InjectedFault:
            return True

    def test_crash_is_noop_in_driver_process(self):
        # os._exit must never fire in the main process, only in pool workers.
        FaultInjector(crash_indices=(0,)).fire(0, 1)

    def test_parse_spec(self):
        inj = FaultInjector.parse("exc=0.2,delay=0.1,crash=0.05", seed=3)
        assert inj.p_exception == 0.2 and inj.p_delay == 0.1
        assert inj.p_crash == 0.05 and inj.seed == 3
        with pytest.raises(ValueError, match="bad chaos spec"):
            FaultInjector.parse("explode=1.0")

    def test_injector_is_picklable(self):
        inj = FaultInjector(seed=1, p_exception=0.1, crash_indices=(3,))
        assert pickle.loads(pickle.dumps(inj)) == inj

    def test_probabilistic_chaos_survivable_with_retries(self):
        ex = ResilientExecutor(
            injector=FaultInjector(seed=11, p_exception=0.3),
            retry=RetryPolicy(max_attempts=6, backoff_base=0.0))
        assert ex.map(_double, range(30)) == [2 * i for i in range(30)]


class TestProcessPoolResilience:
    def test_pool_map_with_transient_faults(self):
        inj = FaultInjector(fail_once_indices=(1, 5))
        with ResilientExecutor(ProcessExecutor(max_workers=2),
                               injector=inj, retry=NO_BACKOFF) as ex:
            assert ex.map(_double, range(8)) == [2 * i for i in range(8)]

    def test_worker_crash_rebuild_then_serial_downgrade(self):
        """A worker dies mid-task (os._exit): the wrapper rebuilds the pool
        once, the crash repeats, and the sweep finishes serially with
        complete, ordered results."""
        inj = FaultInjector(crash_indices=(3,))
        with ResilientExecutor(ProcessExecutor(max_workers=2),
                               injector=inj, retry=NO_BACKOFF) as ex:
            out = ex.map(_double, range(10))
            assert out == [2 * i for i in range(10)]  # nothing dropped/reordered
            assert "pool-rebuild" in ex.events
            assert "serial-downgrade" in ex.events

    def test_crash_without_fallback_records_crash_failures(self):
        inj = FaultInjector(crash_indices=(0,))
        with ResilientExecutor(ProcessExecutor(max_workers=2), injector=inj,
                               retry=NO_BACKOFF, max_pool_rebuilds=0,
                               fall_back_to_serial=False) as ex:
            with pytest.raises(SweepAborted) as ei:
                ex.map(_double, range(4))
        assert all(f.kind == "crash" for f in ei.value.failures)
        assert ei.value.failures[0].error_type == "BrokenProcessPool"

    def test_timeout_kills_hung_worker(self):
        with ResilientExecutor(ProcessExecutor(max_workers=2),
                               task_timeout=1.0,
                               retry=RetryPolicy(max_attempts=1)) as ex:
            start = time.monotonic()
            with pytest.raises(SweepAborted) as ei:
                ex.map(_sleep_on_two, range(6))
            elapsed = time.monotonic() - start
        assert elapsed < 20  # the 30s sleeper did not run to completion
        [failure] = ei.value.failures
        assert failure.index == 2 and failure.kind == "timeout"
        assert failure.error_type == "TaskTimeout"
        # Every other task still completed, in order.
        expected = [2 * i if i != 2 else None for i in range(6)]
        assert ei.value.partial_results == expected
        assert "timeout-reset" in ex.events

    def test_timeout_failure_is_a_task_failed(self):
        from repro.errors import TaskFailed

        assert issubclass(TaskTimeout, TaskFailed)

    def test_pool_checkpoint_resume_matches_serial(self, tmp_path):
        path = tmp_path / "pool.jsonl"
        items = list(range(12))
        reference = [_third(x) for x in items]
        inj = FaultInjector(fail_indices=(6,))
        with ResilientExecutor(ProcessExecutor(max_workers=2),
                               journal=CheckpointJournal(path), injector=inj,
                               retry=RetryPolicy(max_attempts=1)) as ex:
            with pytest.raises(SweepAborted):
                ex.map(_third, items)
        with ResilientExecutor(ProcessExecutor(max_workers=2),
                               journal=CheckpointJournal(path, resume=True)) as ex:
            assert ex.map(_third, items) == reference


class TestSweepIntegration:
    """The design-space sweep driver survives interruption and resumes."""

    def test_interrupted_design_sweep_resumes_bit_identical(self, tmp_path, design_space):
        from repro.simulator import get_profile, sweep_design_space

        configs = design_space[:40]
        profile = get_profile("gzip")
        reference = sweep_design_space(configs, profile)  # plain serial

        path = tmp_path / "sweep.jsonl"
        ex1 = ResilientExecutor(
            journal=CheckpointJournal(path),
            injector=FaultInjector(fail_indices=(20,)),
            retry=RetryPolicy(max_attempts=1))
        with pytest.raises(SweepAborted) as ei:
            sweep_design_space(configs, profile, executor=ex1)
        assert ei.value.n_completed == 39

        ex2 = ResilientExecutor(journal=CheckpointJournal(path, resume=True))
        resumed = sweep_design_space(configs, profile, executor=ex2)
        np.testing.assert_array_equal(resumed, reference)  # bit-identical
        assert any(e.startswith("restored:39") for e in ex2.events)

    def test_sweep_parallel_flag_closes_pool(self, design_space, monkeypatch):
        from repro.parallel import executor as executor_mod
        from repro.simulator import get_profile, sweep_design_space

        closed = []
        orig_close = executor_mod.SerialExecutor.close

        def tracking_close(self):
            closed.append(self)
            return orig_close(self)

        monkeypatch.setattr(executor_mod.SerialExecutor, "close", tracking_close)
        out = sweep_design_space(design_space[:8], get_profile("gzip"),
                                 parallel=False)
        assert len(out) == 8
        assert closed, "internally created executor was never closed"


class TestDriverDeterminism:
    """Executor-threaded drivers return bit-identical results vs serial."""

    def test_estimate_error_executor_identical(self, space_dataset, rng):
        from repro.core import model_builders
        from repro.ml.selection import estimate_error

        space = space_dataset("gzip")
        sample, _ = space.sample(40, rng)
        builder = model_builders(("LR-B",))["LR-B"]
        serial = estimate_error(
            builder, sample, np.random.default_rng(5), n_reps=3)
        with ResilientExecutor() as ex:
            resilient = estimate_error(
                builder, sample, np.random.default_rng(5), n_reps=3, executor=ex)
        assert serial.per_rep == resilient.per_rep

    def test_rolling_chronological_executor_identical(self, spec_archive):
        from repro.core import model_builders, run_rolling_chronological

        records = spec_archive("pentium-d")
        builders = model_builders(("LR-E",))
        serial = run_rolling_chronological(
            "pentium-d", builders, n_cv_reps=2, records=records)
        with ResilientExecutor() as ex:
            resilient = run_rolling_chronological(
                "pentium-d", builders, n_cv_reps=2, records=records, executor=ex)
        assert len(serial) == len(resilient)
        for a, b in zip(serial, resilient):
            assert a.mean_errors() == b.mean_errors()

    def test_search_quality_batch_executor_identical(self, space_dataset, rng):
        from repro.core import build_model, evaluate_search_quality_batch

        space = space_dataset("gzip")
        sample, _ = space.sample(46, rng)
        models = {"LR-B": build_model("LR-B").fit(sample)}
        serial = evaluate_search_quality_batch(models, space)
        with ResilientExecutor() as ex:
            resilient = evaluate_search_quality_batch(models, space, executor=ex)
        assert serial == resilient
