"""Tests for single-writer checkpoint journals (advisory flock sidecar)."""

import pytest

from repro.errors import CheckpointError
from repro.parallel import CheckpointJournal
from repro.util.locking import FileLock

needs_flock = pytest.mark.skipif(not FileLock.enforced,
                                 reason="flock not enforced on this platform")


class TestJournalLock:
    def test_unlocked_journal_unchanged(self, tmp_path):
        j = CheckpointJournal(tmp_path / "j.jsonl")
        j.record("fp1", 1.5)
        j.close()
        assert not (tmp_path / "j.jsonl.lock").exists()

    @needs_flock
    def test_second_writer_refused_while_locked(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = CheckpointJournal(path, lock=True)
        first.record("fp1", 1.5)
        with pytest.raises(CheckpointError, match="locked by another writer"):
            CheckpointJournal(path, resume=True, lock=True)
        first.close()

    @needs_flock
    def test_close_releases_for_next_writer(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = CheckpointJournal(path, lock=True)
        first.record("fp1", 2.5)
        first.close()
        second = CheckpointJournal(path, resume=True, lock=True)
        assert second.completed() == {"fp1": 2.5}
        second.record("fp2", 3.5)
        second.close()

    @needs_flock
    def test_failed_acquire_does_not_hold_anything(self, tmp_path):
        """A refused journal must not break the holder's lock on exit."""
        path = tmp_path / "j.jsonl"
        first = CheckpointJournal(path, lock=True)
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, lock=True)
        # The holder still owns the flock: a third attempt is still refused.
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, lock=True)
        first.close()
        CheckpointJournal(path, resume=True, lock=True).close()

    @needs_flock
    def test_locked_journal_resume_is_bit_identical(self, tmp_path):
        path = tmp_path / "j.jsonl"
        values = {"a": 0.1 + 0.2, "b": float("1e-300"), "c": [1, 2.5]}
        j = CheckpointJournal(path, lock=True)
        for fp, v in values.items():
            j.record(fp, v)
        j.close()
        resumed = CheckpointJournal(path, resume=True, lock=True)
        assert resumed.completed() == values
        resumed.close()
