"""Shared-memory payload shipping: round trips, fallback, verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import shm as shm_mod
from repro.parallel.shm import PayloadHandle, SharedPayload, attach_payload


@pytest.fixture(autouse=True)
def _fresh_attach_memo():
    shm_mod._ATTACHED.clear()
    yield
    shm_mod._ATTACHED.clear()


class TestRoundTrip:
    def test_shared_memory_round_trip(self):
        obj = {"arr": np.arange(1000), "meta": ("gcc", 1e8)}
        with SharedPayload(obj) as shipped:
            assert shipped.handle.name is not None
            assert shipped.handle.inline is None
            out = attach_payload(shipped.handle)
        assert np.array_equal(out["arr"], obj["arr"])
        assert out["meta"] == obj["meta"]

    def test_inline_fallback_round_trip(self):
        obj = [1, 2, 3]
        with SharedPayload(obj, use_shm=False) as shipped:
            assert shipped.handle.name is None
            assert shipped.handle.inline is not None
            assert attach_payload(shipped.handle) == obj

    def test_attach_is_memoized_per_process(self):
        with SharedPayload({"x": 1}) as shipped:
            first = attach_payload(shipped.handle)
            second = attach_payload(shipped.handle)
        assert first is second

    def test_memo_is_bounded(self):
        handles = []
        payloads = [SharedPayload([i]) for i in range(shm_mod._ATTACHED_MAX + 3)]
        try:
            for p in payloads:
                handles.append(p.handle)
                attach_payload(p.handle)
            assert len(shm_mod._ATTACHED) <= shm_mod._ATTACHED_MAX
        finally:
            for p in payloads:
                p.close()


class TestContentAddressing:
    def test_handle_name_is_content_derived(self):
        """Equal payloads -> equal handles, so task fingerprints are stable."""
        obj = {"space": np.arange(64)}
        with SharedPayload(obj) as a:
            with SharedPayload(obj) as b:
                assert a.handle == b.handle

    def test_different_payloads_different_names(self):
        with SharedPayload([1]) as a, SharedPayload([2]) as b:
            assert a.handle.digest != b.handle.digest
            assert a.handle.name != b.handle.name

    def test_close_unlinks_segment(self):
        shipped = SharedPayload(np.arange(100))
        handle = shipped.handle
        if handle.name is None:  # pragma: no cover - /dev/shm unavailable
            pytest.skip("shared memory unavailable on this platform")
        shipped.close()
        with pytest.raises((FileNotFoundError, OSError)):
            attach_payload(handle)

    def test_inline_digest_verified(self):
        handle = PayloadHandle(digest="0" * 64, size=3, inline=b"abc")
        with pytest.raises(ValueError, match="digest"):
            attach_payload(handle)

    def test_handle_requires_exactly_one_backing(self):
        with pytest.raises(ValueError, match="exactly one"):
            PayloadHandle(digest="0" * 64, size=1)
        with pytest.raises(ValueError, match="exactly one"):
            PayloadHandle(digest="0" * 64, size=1, name="x", inline=b"y")


class TestCrossProcess:
    def test_worker_processes_attach_once_each(self):
        """Payload crosses the process boundary via shm and deserializes."""
        from repro.parallel.executor import ProcessExecutor

        obj = {"cycles": np.arange(512, dtype=np.float64)}
        with SharedPayload(obj) as shipped:
            with ProcessExecutor(max_workers=2) as ex:
                sums = ex.map(_sum_from_handle, [shipped.handle] * 6)
        expected = float(obj["cycles"].sum())
        assert sums == [expected] * 6


def _sum_from_handle(handle: PayloadHandle) -> float:
    return float(attach_payload(handle)["cycles"].sum())
