"""Executor-level edge cases for checkpoint/resume and retry exhaustion.

The journal-level behaviours (torn final line, mid-file corruption) are
covered in test_resilient.py; these tests drive the same situations through
a full :class:`ResilientExecutor` resume — what a user actually reruns after
a crash — and pin down what a retry-exhausted abort carries.
"""

from __future__ import annotations

import pytest

from repro.errors import SweepAborted
from repro.obs.metrics import default_registry, reset_default_registry
from repro.parallel import (
    CheckpointJournal,
    FaultInjector,
    ResilientExecutor,
    RetryPolicy,
)

NO_BACKOFF = RetryPolicy(max_attempts=3, backoff_base=0.0)


class _LoggingSquare:
    """`x * x` that appends every execution to a log file.

    The class-level ``__qualname__`` is what task fingerprints hash, so
    instances with different log paths produce identical fingerprints —
    letting resume tests count real executions.
    """

    def __init__(self, log_path):
        self.log_path = str(log_path)

    def __call__(self, x):
        with open(self.log_path, "a") as fh:
            fh.write(f"{x}\n")
        return x * x


class _LoggingCube(_LoggingSquare):
    """A different function → different task fingerprints for the same items."""

    def __call__(self, x):
        with open(self.log_path, "a") as fh:
            fh.write(f"{x}\n")
        return x * x * x


def _executions(path) -> list[int]:
    return [int(line) for line in path.read_text().split()] if path.exists() else []


class TestResumeThroughTornJournal:
    def test_resume_skips_intact_entries_and_recomputes_torn_one(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        log = tmp_path / "runs.log"
        items = list(range(8))

        with ResilientExecutor(journal=CheckpointJournal(journal_path)) as ex:
            expected = ex.map(_LoggingSquare(log), items)
        assert _executions(log) == items

        # Crash artifact: the final record's write was torn mid-line.
        lines = journal_path.read_text().splitlines(keepends=True)
        journal_path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])

        log2 = tmp_path / "runs2.log"
        with ResilientExecutor(
            journal=CheckpointJournal(journal_path, resume=True)
        ) as ex:
            resumed = ex.map(_LoggingSquare(log2), items)

        assert resumed == expected  # bit-identical to the uninterrupted run
        assert _executions(log2) == [7]  # only the torn task re-ran
        assert "restored:7" in ex.events

    def test_journal_healed_after_torn_resume(self, tmp_path):
        """A second resume after the healing run restores everything."""
        journal_path = tmp_path / "sweep.jsonl"
        items = list(range(5))
        with ResilientExecutor(journal=CheckpointJournal(journal_path)) as ex:
            expected = ex.map(_LoggingSquare(tmp_path / "a.log"), items)
        lines = journal_path.read_text().splitlines(keepends=True)
        journal_path.write_text("".join(lines[:-1]) + "{\"fp\": \"torn")
        with ResilientExecutor(
            journal=CheckpointJournal(journal_path, resume=True)
        ) as ex:
            ex.map(_LoggingSquare(tmp_path / "b.log"), items)

        log3 = tmp_path / "c.log"
        with ResilientExecutor(
            journal=CheckpointJournal(journal_path, resume=True)
        ) as ex:
            final = ex.map(_LoggingSquare(log3), items)
        assert final == expected
        assert _executions(log3) == []  # nothing left to recompute


class TestResumeWithChangedFingerprint:
    def test_different_function_restores_nothing(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        items = list(range(6))
        with ResilientExecutor(journal=CheckpointJournal(journal_path)) as ex:
            ex.map(_LoggingSquare(tmp_path / "a.log"), items)

        # Same items, different function → every task fingerprint changes;
        # stale square results must not leak into the cube sweep.
        log = tmp_path / "b.log"
        with ResilientExecutor(
            journal=CheckpointJournal(journal_path, resume=True)
        ) as ex:
            cubes = ex.map(_LoggingCube(log), items)
        assert cubes == [x**3 for x in items]
        assert _executions(log) == items  # everything recomputed
        assert not any(e.startswith("restored") for e in ex.events)

    def test_changed_items_restore_only_the_overlap(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        with ResilientExecutor(journal=CheckpointJournal(journal_path)) as ex:
            ex.map(_LoggingSquare(tmp_path / "a.log"), [10, 11, 12])

        # Positions 0-1 carry the same (index, item) pairs; position 2 does
        # not, so only it reruns.
        log = tmp_path / "b.log"
        with ResilientExecutor(
            journal=CheckpointJournal(journal_path, resume=True)
        ) as ex:
            results = ex.map(_LoggingSquare(log), [10, 11, 99])
        assert results == [100, 121, 9801]
        assert _executions(log) == [99]
        assert "restored:2" in ex.events


class TestRetryExhaustion:
    def test_abort_carries_error_chain_and_attempt_count(self):
        ex = ResilientExecutor(
            injector=FaultInjector(fail_indices=(2,)), retry=NO_BACKOFF)
        with pytest.raises(SweepAborted) as ei:
            ex.map(lambda x: x + 1, range(5))
        aborted = ei.value
        [failure] = aborted.failures
        assert failure.index == 2
        assert failure.attempts == NO_BACKOFF.max_attempts  # budget fully spent
        assert failure.error_type == "InjectedFault"
        assert "task 2" in failure.message
        # The abort still returns every completed result.
        assert aborted.partial_results == [1, 2, None, 4, 5]
        # Each exhausted attempt before the last was logged as a retry.
        retries = [e for e in ex.events if e.startswith("retry:2:")]
        assert retries == ["retry:2:1", "retry:2:2"]

    def test_exhaustion_updates_executor_metrics(self):
        reset_default_registry()
        ex = ResilientExecutor(
            injector=FaultInjector(fail_indices=(0,)), retry=NO_BACKOFF)
        with pytest.raises(SweepAborted):
            ex.map(lambda x: x, range(3))
        reg = default_registry()
        assert reg.counter("executor.retries").value == 2
        assert reg.counter("executor.failures").value == 1
        assert reg.counter("executor.tasks.completed").value == 2
        reset_default_registry()

    def test_multiple_failures_sorted_by_index(self):
        ex = ResilientExecutor(
            injector=FaultInjector(fail_indices=(3, 1)), retry=NO_BACKOFF)
        with pytest.raises(SweepAborted) as ei:
            ex.map(lambda x: x, range(5))
        assert [f.index for f in ei.value.failures] == [1, 3]
        assert ei.value.checkpointed is False
