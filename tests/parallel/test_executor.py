"""Tests for the executor abstraction (serial / process-pool)."""

import math
import os

import pytest

from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    default_executor,
)


def _square(x):
    return x * x


def _add(a, b):
    return a + b


class TestSerialExecutor:
    def test_map_preserves_order(self):
        ex = SerialExecutor()
        assert ex.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_input(self):
        assert SerialExecutor().map(_square, []) == []

    def test_starmap(self):
        assert SerialExecutor().starmap(_add, [(1, 2), (3, 4)]) == [3, 7]

    def test_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.map(_square, [2]) == [4]


class TestProcessExecutor:
    def test_matches_serial(self):
        items = list(range(50))
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.map(_square, items) == SerialExecutor().map(_square, items)

    def test_single_item_fast_path(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.map(_square, [5]) == [25]
            assert ex._pool is None  # pool never started

    def test_starmap(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.starmap(_add, [(1, 2), (3, 4)]) == [3, 7]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ProcessExecutor(chunksize=0)

    def test_chunksize_heuristic(self):
        ex = ProcessExecutor(max_workers=4)
        assert ex._pick_chunksize(1600) == math.ceil(1600 / 16)
        assert ex._pick_chunksize(1) == 1

    def test_explicit_chunksize_respected(self):
        ex = ProcessExecutor(max_workers=2, chunksize=7)
        assert ex._pick_chunksize(1000) == 7

    def test_reuse_after_map(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
            assert ex.map(_square, [4, 5, 6]) == [16, 25, 36]


class TestDefaultExecutor:
    def test_small_workload_serial(self):
        assert isinstance(default_executor(n_items=10), SerialExecutor)

    def test_explicit_flag_wins(self):
        assert isinstance(default_executor(n_items=10, parallel=True), ProcessExecutor)
        assert isinstance(default_executor(n_items=10_000, parallel=False), SerialExecutor)

    def test_large_workload_parallel_when_multicore(self):
        ex = default_executor(n_items=10_000)
        if (os.cpu_count() or 1) > 1:
            assert isinstance(ex, ProcessExecutor)
        ex.close()
