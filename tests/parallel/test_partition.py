"""Tests for deterministic work partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel.partition import balanced_chunks, chunk_bounds, interleaved_chunks


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(6, 3) == [(0, 2), (2, 4), (4, 6)]

    def test_uneven_split_front_loads(self):
        assert chunk_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_chunks_than_items(self):
        assert chunk_bounds(2, 5) == [(0, 1), (1, 2)]

    def test_zero_items(self):
        assert chunk_bounds(0, 3) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            chunk_bounds(-1, 2)
        with pytest.raises(ValueError):
            chunk_bounds(5, 0)

    @given(st.integers(0, 500), st.integers(1, 32))
    def test_covers_everything_once(self, n, k):
        bounds = chunk_bounds(n, k)
        covered = [i for lo, hi in bounds for i in range(lo, hi)]
        assert covered == list(range(n))

    @given(st.integers(1, 500), st.integers(1, 32))
    def test_sizes_differ_by_at_most_one(self, n, k):
        sizes = [hi - lo for lo, hi in chunk_bounds(n, k)]
        assert max(sizes) - min(sizes) <= 1


class TestBalancedChunks:
    def test_slices_match_bounds(self):
        items = list(range(7))
        chunks = list(balanced_chunks(items, 3))
        assert chunks == [[0, 1, 2], [3, 4], [5, 6]]


class TestInterleavedChunks:
    def test_round_robin(self):
        chunks = list(interleaved_chunks(list(range(7)), 3))
        assert chunks == [[0, 3, 6], [1, 4], [2, 5]]

    def test_rejects_zero_chunks(self):
        with pytest.raises(ValueError):
            list(interleaved_chunks([1], 0))

    @given(st.lists(st.integers(), max_size=100), st.integers(1, 16))
    def test_partition_property(self, items, k):
        chunks = list(interleaved_chunks(items, k))
        flat = sorted(x for c in chunks for x in c)
        assert flat == sorted(items)
