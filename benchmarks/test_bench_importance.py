"""§4.4 importance analysis: NN sensitivities and LR standardized betas.

The paper reports, for Opteron, NN importances led by processor speed
(0.659) with memory frequency / L2-on-chip / L1D size following, and LR
standardized betas of 0.915 (speed) and 0.119 (memory size); for Pentium D,
speed (0.570) and L2 size (0.500) lead the NN list while LR uses speed
(0.733) and L2 size (0.583).
"""

import pytest

from repro.core import build_model
from repro.core.chronological import chronological_datasets
from repro.specdata import generate_family_records
from repro.util.tables import format_kv

SEED = 2008


@pytest.mark.parametrize("family", ["opteron", "pentium-d"])
def test_importance_analysis(family, benchmark, emit):
    records = generate_family_records(family, seed=SEED)
    train, _ = chronological_datasets(family, records=records)

    def build():
        lr = build_model("LR-E").fit(train)
        nn = build_model("NN-Q", seed=SEED).fit(train)
        return lr, nn

    lr, nn = benchmark.pedantic(build, rounds=1, iterations=1)

    betas = {k: abs(v) for k, v in lr.standardized_betas.items()}
    imps = dict(list(nn.importances().items())[:8])
    text = "\n".join([
        f"[Sec 4.4] importance analysis - {family}",
        format_kv(dict(sorted(betas.items(), key=lambda kv: -kv[1])[:8]),
                  title="LR-E |standardized beta|"),
        format_kv(imps, title="NN-Q sensitivity importance"),
    ])
    emit(f"importance_{family}", text)

    # LR: speed and (for Pentium D) L2 size carry the dominant standardized
    # betas — the paper's pairs are 0.915/0.119 (Opteron: speed/memory) and
    # 0.733/0.583 (Pentium D: speed/L2, nearly tied).
    top2 = sorted(betas, key=betas.get, reverse=True)[:2]
    if family == "opteron":
        assert top2[0] == "processor_speed"
    else:
        assert "processor_speed" in top2 and "l2_size" in top2
    assert betas["processor_speed"] > 0.3
    # NN: the dominant physical signal leads the sensitivity list — speed
    # for Opteron; for Pentium D the 2x L2-size axis outweighs its narrow
    # 1.2x clock window (the paper scores them 0.570 vs 0.500, nearly tied).
    ranked = list(nn.importances())
    speed_rank = min(ranked.index(k) for k in ("processor_speed", "processor_model")
                     if k in ranked)
    if family == "opteron":
        assert speed_rank < 4
    else:
        assert ranked.index("l2_size") < 3
        assert speed_rank < 6
