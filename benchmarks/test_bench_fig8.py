"""Figure 8: chronological predictions for Opteron 1/2/4/8-way SMPs.

The paper's multiprocessor findings: minimum errors rise slightly with the
processor count (2.1 → 3.1 → 3.2 → 3.5%), the winners are the stepwise /
backward LR methods, and the neural networks degrade as systems grow.
"""

import pytest

from repro.core import figure_chronological_table

PANEL = {"opteron": "8a", "opteron-2": "8b", "opteron-4": "8c", "opteron-8": "8d"}


@pytest.mark.parametrize("family", list(PANEL))
def test_fig8_chronological(family, benchmark, chrono_cache, emit):
    result = benchmark.pedantic(chrono_cache, args=(family,), rounds=1, iterations=1)
    emit(f"fig{PANEL[family]}_{family}",
         f"[Figure {PANEL[family]}] {figure_chronological_table(result)}")

    errors = result.mean_errors()
    best_lr = min(v for k, v in errors.items() if k.startswith("LR"))
    best_nn = min(v for k, v in errors.items() if k.startswith("NN"))
    assert best_lr <= best_nn
    assert result.best_label.startswith("LR")
    assert result.best_error < 10.0


def test_fig8_smp_trends(chrono_cache, emit):
    """Cross-panel assertions over the whole Opteron line."""
    results = {f: chrono_cache(f) for f in PANEL}
    lines = ["Figure 8 summary (best mean %error per way count)"]
    for fam, res in results.items():
        lines.append(f"{fam:10s} best={res.best_error:.2f} ({res.best_label})")
    emit("fig8_summary", "\n".join(lines))

    # §4.3: on the sparse 8-way set the subset-selection methods (LR-S/LR-B)
    # beat plain enter (LR-E).
    opt8 = results["opteron-8"].mean_errors()
    assert min(opt8["LR-S"], opt8["LR-B"]) <= opt8["LR-E"]
