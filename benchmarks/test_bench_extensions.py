"""Extension experiments beyond the presented results.

1. **SPECfp chronological prediction** — the paper presents SPECint rates
   only; the archive publishes both, so we run the same Figure-7 protocol
   on the floating-point rating.
2. **Individual-application prediction** — §4 states per-app execution
   times "can also be accurately estimated, however due to space
   constraints their presentations are omitted". We present them.
3. **All-twelve-apps sampled DSE** — the paper presents five of its twelve
   simulated applications; we run the remaining seven through the same
   Table-3 protocol.
"""

import numpy as np

from repro.core import model_builders, run_chronological, run_sampled_dse
from repro.ml import LinearRegressionModel, summarize_errors
from repro.simulator import (
    PRESENTED_APPS,
    SPEC2000_PROFILES,
    design_space_dataset,
    get_profile,
    sweep_design_space,
)
from repro.specdata import generate_family_records, records_to_dataset
from repro.util.tables import format_table

SEED = 2008


def test_extension_specfp_chronological(benchmark, emit):
    families = ("xeon", "opteron", "opteron-8")
    builders = model_builders(("LR-E", "LR-S", "LR-B", "NN-Q"), seed=SEED)

    def run():
        out = {}
        for fam in families:
            records = generate_family_records(fam, seed=SEED)
            out[fam] = run_chronological(
                fam, builders, seed=SEED, target="specfp_rate", records=records)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[fam, res.best_error, res.best_label] for fam, res in results.items()]
    emit("extension_specfp", format_table(
        ["family", "best %err", "method"], rows,
        title="[Extension] chronological SPECfp2000 rate prediction", ndigits=2,
    ))
    for fam, res in results.items():
        assert res.best_label.startswith("LR"), fam
        assert res.best_error < 9.0, fam


def test_extension_individual_apps(benchmark, emit):
    apps = ("181.mcf", "186.crafty", "176.gcc", "171.swim", "173.applu")
    records = generate_family_records("opteron", seed=SEED)

    def run():
        out = {}
        for app in apps:
            train = records_to_dataset(
                [r for r in records if r.year == 2005], f"app:{app}")
            test = records_to_dataset(
                [r for r in records if r.year == 2006], f"app:{app}")
            model = LinearRegressionModel("backward").fit(train)
            out[app] = summarize_errors(model.predict(test), test.target).mean
        return out

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[app, err] for app, err in errors.items()]
    emit("extension_individual_apps", format_table(
        ["application", "LR-B 2006 %err"], rows,
        title="[Extension] per-application chronological prediction (opteron)",
    ))
    # "they can also be accurately estimated" (§4).
    assert all(err < 8.0 for err in errors.values())


def test_extension_remaining_seven_apps(benchmark, design_space, emit):
    apps = sorted(set(SPEC2000_PROFILES) - set(PRESENTED_APPS))
    builders = model_builders(("NN-E", "LR-B"), seed=SEED)

    def run():
        out = {}
        for app in apps:
            cycles = sweep_design_space(design_space, get_profile(app))
            space = design_space_dataset(design_space, cycles)
            rng = np.random.default_rng((SEED, app.encode()[0]))
            res = run_sampled_dse(space, builders, 0.03, rng)
            out[app] = res
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[app, res.outcomes["NN-E"].true_error, res.outcomes["LR-B"].true_error]
            for app, res in results.items()]
    emit("extension_remaining_apps", format_table(
        ["app", "NN-E %err", "LR-B %err"], rows,
        title="[Extension] sampled DSE @ 3% for the seven unpresented apps",
    ))
    # "The remaining results are similar" (§4.1): same error regime.
    for app, res in results.items():
        assert res.outcomes["NN-E"].true_error < 15.0, app


def test_extension_search_quality(benchmark, design_space, emit):
    """What the surrogate is for: finding good designs, not just low MAPE.

    Regret / top-k recall / rank correlation of a 3%-trained NN-E over the
    full 4608-config space, per application.
    """
    from repro.core import evaluate_search_quality, model_builders

    apps = ("mcf", "gcc", "applu")

    def run():
        out = {}
        for app in apps:
            cycles = sweep_design_space(design_space, get_profile(app))
            space = design_space_dataset(design_space, cycles)
            sample, _ = space.sample(138, np.random.default_rng((SEED, 7)))
            model = model_builders(("NN-E",), seed=SEED)["NN-E"]()
            model.fit(sample)
            out[app] = evaluate_search_quality(model, space)
        return out

    quality = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[app, q.regret * 100, q.top_10_recall, q.top_50_recall,
             q.rank_correlation] for app, q in quality.items()]
    emit("extension_search_quality", format_table(
        ["app", "regret %", "top-10 recall", "top-50 recall", "spearman"],
        rows, title="[Extension] surrogate-guided search quality (NN-E @ 3%)",
    ))
    for app, q in quality.items():
        assert q.regret < 0.15, app
        assert q.rank_correlation > 0.85, app


def test_extension_rolling_chronological(benchmark, emit):
    """Is 2005->2006 special? Roll the origin over every usable year pair."""
    from repro.core import model_builders, run_rolling_chronological

    builders = model_builders(("LR-E", "LR-B", "NN-Q"), seed=SEED)

    def run():
        return run_rolling_chronological(
            "xeon", builders, seed=SEED,
            records=generate_family_records("xeon", seed=SEED))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{r.train_year}->{r.test_year}", r.n_train, r.n_test,
             r.errors["LR-E"].mean, r.errors["LR-B"].mean,
             r.errors["NN-Q"].mean] for r in results]
    emit("extension_rolling", format_table(
        ["fold", "n_tr", "n_te", "LR-E", "LR-B", "NN-Q"], rows,
        title="[Extension] rolling-origin chronological prediction (xeon)",
    ))
    # The paper's finding is not a 2005 artifact: LR wins every fold.
    for r in results:
        best_lr = min(r.errors["LR-E"].mean, r.errors["LR-B"].mean)
        assert best_lr <= r.errors["NN-Q"].mean, (r.train_year, r.test_year)
