"""Benchmark fixtures: shared experiment caches and result output.

Each benchmark regenerates one of the paper's tables or figures. The
figure/table pairs share underlying computations (Table 3 aggregates the
Figure 2-6 sweeps; Table 2 aggregates the Figure 7-8 runs), so results are
memoized in session-scoped caches — whichever benchmark runs first pays.

Every regenerated table is printed and also written to
``benchmarks/results/<name>.txt`` so the run leaves a durable record.

Environment knobs:

* ``REPRO_BENCH_FAST=1`` — reduce sampling rates and CV repetitions for a
  quick smoke run (the full run takes ~10-20 minutes).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import NINE_MODELS, SAMPLED_DSE_MODELS, model_builders, run_chronological, run_rate_sweep
from repro.simulator import (
    design_space_dataset,
    enumerate_design_space,
    get_profile,
    sweep_design_space,
)
from repro.specdata import generate_family_records

SEED = 2008  # the paper's year

RESULTS_DIR = Path(__file__).parent / "results"

FAST = os.environ.get("REPRO_BENCH_FAST", "") == "1"

#: Sampling rates of Figures 2-6 / Table 3 (paper: 1%-5%).
RATES = (0.01, 0.03, 0.05) if FAST else (0.01, 0.02, 0.03, 0.04, 0.05)
CV_REPS = 3 if FAST else 5


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a regenerated table and persist it under results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def design_space():
    return list(enumerate_design_space())


@pytest.fixture(scope="session")
def dse_cache(design_space):
    """app -> list[SampledDseResult] over RATES with the Fig 2-6 models."""
    cache: dict[str, list] = {}

    def get(app: str):
        if app not in cache:
            cycles = sweep_design_space(design_space, get_profile(app))
            space = design_space_dataset(design_space, cycles)
            builders = model_builders(SAMPLED_DSE_MODELS, seed=SEED)
            rng = np.random.default_rng((SEED, 1))
            cache[app] = run_rate_sweep(space, builders, list(RATES), rng,
                                        n_cv_reps=CV_REPS)
        return cache[app]

    return get


@pytest.fixture(scope="session")
def chrono_cache():
    """family -> ChronologicalResult with the nine Figure 7-8 models."""
    cache: dict[str, object] = {}

    def get(family: str):
        if family not in cache:
            records = generate_family_records(family, seed=SEED)
            builders = model_builders(NINE_MODELS, seed=SEED)
            cache[family] = run_chronological(
                family, builders, seed=SEED,
                rng=np.random.default_rng((SEED, 2)),
                n_cv_reps=CV_REPS, records=records,
            )
        return cache[family]

    return get
