"""Figure 7: chronological predictions for Xeon / Pentium 4 / Pentium D.

All nine models (LR-E/S/B/F, NN-Q/D/M/P/E) train on the 2005 announcements
and predict 2006; the regenerated table reports each model's mean ± std
percentage error, the quantities the paper's error-bar plots show.
"""

import pytest

from repro.core import figure_chronological_table

PANEL = {"xeon": "7a", "pentium-4": "7b", "pentium-d": "7c"}


@pytest.mark.parametrize("family", ["xeon", "pentium-4", "pentium-d"])
def test_fig7_chronological(family, benchmark, chrono_cache, emit):
    result = benchmark.pedantic(chrono_cache, args=(family,), rounds=1, iterations=1)
    emit(f"fig{PANEL[family]}_{family}",
         f"[Figure {PANEL[family]}] {figure_chronological_table(result)}")

    errors = result.mean_errors()
    # §4.3: "Linear Regression models perform better than Neural Networks".
    best_lr = min(v for k, v in errors.items() if k.startswith("LR"))
    best_nn = min(v for k, v in errors.items() if k.startswith("NN"))
    assert best_lr <= best_nn
    # Table 2 regime: best error a few percent (allow 2.5x the paper).
    assert result.best_error < 12.0
    # The winning model is a linear regression, as in Table 2.
    assert result.best_label.startswith("LR")
