"""Offline eviction-policy evaluator: every policy vs the Belady/OPT oracle.

Replays access traces — the four seeded synthetic workloads from
``cache_traces.py`` by default, or captured ``repro-cachetrace/1`` files
via ``--trace`` — through every shipped eviction policy
(:data:`repro.cache.POLICIES`) plus a clairvoyant Belady/OPT oracle, and
writes hit-rate-vs-capacity curves to ``benchmarks/results/BENCH_cache.json``.

The oracle (evict the resident key whose next use is farthest in the
future) is the provable upper bound on hit rate for any demand-fetch
cache of the same capacity, so the gap ``oracle - policy`` is the exact
headroom left on that workload.

Run::

    PYTHONPATH=src python benchmarks/cache_oracle.py [--out PATH]
        [--trace CAPTURE.jsonl ...] [--seed N]

Exit codes: 0 ok; 2 a policy beat the oracle (replay bug); 3 no shipped
policy beat LRU on the scan / phase-shift adversarial workloads; 4 a
policy's hit rate regressed more than ``PIN_TOLERANCE`` below its pinned
value on a synthetic workload.
"""

from __future__ import annotations

import argparse
import heapq
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

sys.path.insert(0, str(Path(__file__).resolve().parent))

from cache_traces import TraceGenerator, WORKLOADS  # noqa: E402

from repro.cache import POLICIES, make_policy, read_cache_trace  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Capacity sweep, as fractions of the trace's distinct-key count.
CAPACITY_FRACTIONS = (0.05, 0.1, 0.2, 0.4)

#: The fraction the pins and the LRU-challenge check are evaluated at.
REFERENCE_FRACTION = 0.1

#: Hit rates regress-fail if they drop more than this (absolute) below pin.
PIN_TOLERANCE = 0.01

#: Pinned hit rates at REFERENCE_FRACTION for seed 0 — exact values from a
#: replay of the deterministic synthetic traces (policies and the replay
#: loop are pure functions of the trace). Regenerate with --print-pins
#: after an intentional policy change.
PINNED: dict[str, dict[str, float]] = {
    "static": {
        "lru": 0.63770, "lfu": 0.81975, "2q": 0.69480, "arc": 0.76805,
        "oracle": 0.84915,
    },
    "phase_shift": {
        "lru": 0.77915, "lfu": 0.27830, "2q": 0.79195, "arc": 0.81220,
        "oracle": 0.85200,
    },
    "oscillating": {
        "lru": 0.19775, "lfu": 0.10520, "2q": 0.18875, "arc": 0.19690,
        "oracle": 0.51580,
    },
    "scan": {
        "lru": 0.48685, "lfu": 0.60020, "2q": 0.59710, "arc": 0.60035,
        "oracle": 0.61890,
    },
}

_MISS = object()


def replay_policy(name: str, keys: list[str], capacity: int) -> dict:
    """Run ``keys`` through one policy instance; return its counters."""
    policy = make_policy(name, capacity)
    for key in keys:
        if policy.get(key, _MISS) is _MISS:
            policy.put(key, 1)
    counters = policy.counters()
    total = counters["hits"] + counters["misses"]
    counters["hit_rate"] = counters["hits"] / total if total else 0.0
    return counters


def belady_hit_rate(keys: list[str], capacity: int) -> float:
    """Clairvoyant OPT replay: evict the key reused farthest in the future.

    The incoming key is itself an eviction candidate — if every resident
    is reused sooner than the missing key's next use, the miss bypasses
    the cache entirely. That is the true (bypass-allowed) Belady bound,
    which dominates the mandatory-insert discipline every shipped policy
    follows.

    A lazy max-heap of (-next_use, key) stands in for a priority queue
    with decrease-key: every access pushes the key's new next-use, and
    eviction pops stale entries until the heap top agrees with the
    resident table — O(n log n) over the trace instead of
    O(n * capacity).
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    n = len(keys)
    inf = float("inf")
    next_use = [inf] * n
    last_seen: dict[str, int] = {}
    for i in range(n - 1, -1, -1):
        next_use[i] = last_seen.get(keys[i], inf)
        last_seen[keys[i]] = i

    resident: dict[str, float] = {}  # key -> its current next-use index
    heap: list[tuple[float, str]] = []
    hits = 0
    for i, key in enumerate(keys):
        if key in resident:
            hits += 1
        elif len(resident) >= capacity:
            while resident.get(heap[0][1]) != -heap[0][0]:
                heapq.heappop(heap)  # stale: key re-pushed or evicted since
            if -heap[0][0] <= next_use[i]:
                continue  # incoming key is the farthest-reused: bypass
            _, victim = heapq.heappop(heap)
            del resident[victim]
        resident[key] = next_use[i]
        heapq.heappush(heap, (-next_use[i], key))
    return hits / n if n else 0.0


def evaluate_trace(name: str, keys: list[str],
                   fractions=CAPACITY_FRACTIONS) -> dict:
    """Hit-rate-vs-capacity curves for one trace, every policy + oracle."""
    n_distinct = len(set(keys))
    curves = []
    for fraction in fractions:
        capacity = max(4, int(n_distinct * fraction))
        start = time.perf_counter()
        hit_rate = {policy: replay_policy(policy, keys, capacity)["hit_rate"]
                    for policy in POLICIES}
        hit_rate["oracle"] = belady_hit_rate(keys, capacity)
        curves.append({
            "capacity": capacity,
            "capacity_fraction": fraction,
            "hit_rate": hit_rate,
            "replay_seconds": time.perf_counter() - start,
        })
    return {
        "name": name,
        "n_requests": len(keys),
        "n_distinct": n_distinct,
        "curves": curves,
    }


def _reference_rates(entry: dict) -> dict[str, float]:
    for curve in entry["curves"]:
        if curve["capacity_fraction"] == REFERENCE_FRACTION:
            return curve["hit_rate"]
    return entry["curves"][0]["hit_rate"]


def run_checks(workloads: dict[str, dict]) -> tuple[list[str], list[str]]:
    """Sanity + quality + pin checks; returns (failures, notes)."""
    failures: list[str] = []
    notes: list[str] = []
    eps = 1e-9
    for name, entry in workloads.items():
        for curve in entry["curves"]:
            oracle = curve["hit_rate"]["oracle"]
            for policy in POLICIES:
                if curve["hit_rate"][policy] > oracle + eps:
                    failures.append(
                        f"{name}@{curve['capacity']}: {policy} "
                        f"{curve['hit_rate'][policy]:.4f} beat the oracle "
                        f"{oracle:.4f} (replay bug)")

    for adversarial in ("scan", "phase_shift"):
        entry = workloads.get(adversarial)
        if entry is None:
            continue
        rates = _reference_rates(entry)
        better = [p for p in POLICIES
                  if p != "lru" and rates[p] > rates["lru"] + eps]
        if better:
            notes.append(
                f"{adversarial}: {', '.join(sorted(better))} beat LRU "
                f"({rates['lru']:.4f}) at the reference capacity")
        else:
            failures.append(
                f"{adversarial}: no shipped policy beat LRU "
                f"({rates['lru']:.4f}) at the reference capacity")

    for name, pins in PINNED.items():
        entry = workloads.get(name)
        if entry is None:
            continue
        rates = _reference_rates(entry)
        for policy, pinned in pins.items():
            got = rates.get(policy)
            if got is None:
                continue
            if got < pinned - PIN_TOLERANCE:
                failures.append(
                    f"pin regression: {name}/{policy} hit rate {got:.5f} "
                    f"< pinned {pinned:.5f} - {PIN_TOLERANCE}")
    return failures, notes


def load_captured_trace(path: Path) -> list[str]:
    """Key sequence of a captured ``repro-cachetrace/1`` file, in order."""
    return [record["key"] for record in read_cache_trace(path)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(RESULTS_DIR / "BENCH_cache.json"),
                        metavar="PATH", help="where to write the JSON report")
    parser.add_argument("--trace", action="append", default=[],
                        metavar="CAPTURE.jsonl",
                        help="also replay a captured repro-cachetrace/1 file "
                             "(repeatable; pins never apply to captures)")
    parser.add_argument("--seed", type=int, default=0,
                        help="synthetic trace seed (pins assume 0)")
    parser.add_argument("--print-pins", action="store_true",
                        help="print a PINNED block for the current replay "
                             "and skip the pin check")
    args = parser.parse_args(argv)

    generator = TraceGenerator(seed=args.seed)
    traces = generator.all_traces()

    workloads: dict[str, dict] = {}
    for name in WORKLOADS:
        trace = traces[name]
        print(f"[{name}] {trace.n_requests} requests, "
              f"{trace.n_distinct} distinct keys...")
        workloads[name] = entry = evaluate_trace(name, trace.keys)
        rates = _reference_rates(entry)
        print("      " + "  ".join(
            f"{p}={rates[p]:.4f}" for p in (*POLICIES, "oracle")))

    captures: dict[str, dict] = {}
    for raw in args.trace:
        path = Path(raw)
        keys = load_captured_trace(path)
        if not keys:
            print(f"[capture {path.name}] empty trace, skipping")
            continue
        print(f"[capture {path.name}] {len(keys)} requests, "
              f"{len(set(keys))} distinct keys...")
        captures[path.name] = entry = evaluate_trace(path.name, keys)
        rates = _reference_rates(entry)
        print("      " + "  ".join(
            f"{p}={rates[p]:.4f}" for p in (*POLICIES, "oracle")))

    if args.print_pins:
        pins = {name: {p: round(_reference_rates(entry)[p], 5)
                       for p in (*POLICIES, "oracle")}
                for name, entry in workloads.items()}
        print("PINNED = " + json.dumps(pins, indent=4))
        failures, notes = [], ["pin check skipped (--print-pins)"]
    else:
        failures, notes = run_checks(workloads)

    report = {
        "schema": "repro-bench-cache/1",
        "seed": args.seed,
        "capacity_fractions": list(CAPACITY_FRACTIONS),
        "reference_fraction": REFERENCE_FRACTION,
        "pin_tolerance": PIN_TOLERANCE,
        "pinned": PINNED,
        "workloads": workloads,
        "captures": captures,
        "checks": {"failures": failures, "notes": notes},
        "unix_time": time.time(),
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    for note in notes:
        print(f"note: {note}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if any("oracle" in f and "replay bug" in f for f in failures):
            return 2
        if any("no shipped policy beat LRU" in f for f in failures):
            return 3
        return 4
    return 0


if __name__ == "__main__":
    sys.exit(main())
