"""Perf harness: measure each hot-path layer and emit BENCH_perf.json.

Measures the three performance layers against the seed scalar baseline and
writes one machine-readable JSON file so future changes can see regressions:

1. **batch_simulation** — the vectorized ``evaluate_design_space_batch``
   versus the seed per-config scalar loop over the full 4608-point space,
   with a hard bit-identity check (nonzero exit on divergence).
2. **parallel_shm** — the chunked shared-memory executor path versus the
   serial batch kernel (reported honestly: on the ~100 ms full-space batch
   the pool startup usually dominates; the path exists for the heavyweight
   workloads layered on top).
3. **result_cache** — cold/warm/disk-warm sweep timings plus counter
   snapshots, and a two-rate ``run_sampled_dse`` sweep recording per-rate
   cache hits (the second rate must hit).
4. **observability** — the traced sweep versus the untraced sweep (tracing
   must be bit-identical and cheap), plus a small traced pipeline whose
   per-phase timings are embedded in the report and whose JSONL trace is
   written to ``benchmarks/results/BENCH_trace.jsonl`` for
   ``repro obs summarize``.
5. **cache_policies** — a repeated chunked-sweep workload run under every
   eviction policy (small ``max_entries`` forcing eviction): wall time,
   hit/miss/eviction counters, and a bit-identity check across policies;
   plus the access-trace capture overhead (warm all-hit passes with
   capture off vs on — the off path must stay near-free).

Run::

    PYTHONPATH=src python benchmarks/perf_harness.py [--reduced] [--out PATH]

Exit codes: 0 ok; 2 batched-vs-scalar or traced-vs-untraced divergence;
3 cache layers failed to produce second-rate hits or changed results;
4 eviction policies disagreed on sweep results.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import obs
from repro.cache import (
    ResultCache,
    available_policies,
    cache_snapshot,
    configure_capture,
    get_recorder,
    shutdown_capture,
)
from repro.core import model_builders, run_sampled_dse
from repro.ml.preprocess import raw_matrix_cache
from repro.obs.summarize import phase_rows, read_trace, summarize_trace
from repro.parallel.executor import ProcessExecutor
from repro.simulator import (
    design_space_dataset,
    enumerate_design_space,
    get_profile,
    sweep_design_space,
)
from repro.simulator.interval import _miss

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _timed(fn, repeats: int = 1) -> tuple[float, object]:
    """Best-of-``repeats`` wall time; the miss-rate memo is cleared each run
    so every run pays the same leaf-evaluation cost the seed path paid."""
    best, result = float("inf"), None
    for _ in range(repeats):
        _miss.cache_clear()
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_batch_simulation(configs, profile) -> dict:
    scalar_s, scalar = _timed(
        lambda: sweep_design_space(configs, profile, method="scalar"))
    batch_s, batch = _timed(
        lambda: sweep_design_space(configs, profile, method="batch"), repeats=3)
    return {
        "n_configs": len(configs),
        "scalar_seconds": scalar_s,
        "batch_seconds": batch_s,
        "speedup": scalar_s / batch_s,
        "bit_identical": bool(np.array_equal(scalar, batch)),
    }


def bench_parallel_shm(configs, profile) -> dict:
    serial_s, serial = _timed(
        lambda: sweep_design_space(configs, profile, method="batch"))
    with ProcessExecutor() as ex:
        workers = ex.max_workers
        parallel_s, par = _timed(
            lambda: sweep_design_space(configs, profile, method="batch",
                                       executor=ex))
        # second map reuses warm workers + per-process attach memo
        rewarm_s, _ = _timed(
            lambda: sweep_design_space(configs, profile, method="batch",
                                       executor=ex))
    return {
        "workers": workers,
        "serial_batch_seconds": serial_s,
        "parallel_cold_seconds": parallel_s,
        "parallel_warm_seconds": rewarm_s,
        "speedup_vs_serial_batch": serial_s / rewarm_s,
        "bit_identical": bool(np.array_equal(serial, par)),
    }


def bench_result_cache(configs, profile, tmp_dir: Path) -> dict:
    store = ResultCache(disk_root=tmp_dir)
    cold_s, cold = _timed(
        lambda: sweep_design_space(configs, profile, cache=store))
    warm_s, warm = _timed(
        lambda: sweep_design_space(configs, profile, cache=store))
    disk_store = ResultCache(disk_root=tmp_dir)  # cold memory, warm disk
    disk_s, from_disk = _timed(
        lambda: sweep_design_space(configs, profile, cache=disk_store))
    stats = store.stats()
    return {
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "disk_warm_seconds": disk_s,
        "warm_speedup": cold_s / warm_s,
        "bit_identical": bool(np.array_equal(cold, warm)
                              and np.array_equal(cold, from_disk)),
        "events": list(store.events) + list(disk_store.events),
        "stats": stats.as_dict(),
    }


def bench_rate_sweep(configs, profile, reduced: bool) -> dict:
    """Two-rate sampled-DSE sweep with per-rate cache-counter snapshots."""
    space = design_space_dataset(
        configs, sweep_design_space(configs, profile))
    builders = model_builders(("LR-B", "LR-E"), seed=0)
    rates = [0.01, 0.02]
    n_cv_reps = 2 if reduced else 5
    rng = np.random.default_rng(0)
    matrix_cache = raw_matrix_cache()
    per_rate = []
    for rate in rates:
        hits0, misses0 = matrix_cache.hits, matrix_cache.misses
        start = time.perf_counter()
        run_sampled_dse(space, builders, rate, rng, n_cv_reps=n_cv_reps)
        seconds = time.perf_counter() - start
        hits = matrix_cache.hits - hits0
        misses = matrix_cache.misses - misses0
        per_rate.append({
            "rate": rate,
            "seconds": seconds,
            "design_matrix_hits": hits,
            "design_matrix_misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        })
    return {
        "rates": rates,
        "n_cv_reps": n_cv_reps,
        "models": list(builders),
        "per_rate": per_rate,
        "second_rate_nonzero_hits": per_rate[1]["design_matrix_hits"] > 0,
    }


def bench_observability(configs, profile, reduced: bool, trace_out: Path) -> dict:
    """Traced vs untraced sweep, plus a traced pipeline's phase breakdown."""
    untraced_s, untraced = _timed(
        lambda: sweep_design_space(configs, profile, method="batch"), repeats=3)

    trace_out.parent.mkdir(parents=True, exist_ok=True)
    trace_out.unlink(missing_ok=True)
    obs.reset_default_registry()
    obs.configure(trace_path=trace_out, registry=obs.default_registry())
    try:
        traced_s, traced = _timed(
            lambda: sweep_design_space(configs, profile, method="batch"),
            repeats=3)
        # A small end-to-end pipeline so the trace (and the per-phase rows
        # below) covers encode/train/predict/holdout, not just the sweep.
        space = design_space_dataset(
            configs, sweep_design_space(configs, profile))
        run_sampled_dse(space, model_builders(("LR-B", "LR-E"), seed=0),
                        0.01, np.random.default_rng(0),
                        n_cv_reps=2 if reduced else 5)
        obs.annotate("cache-snapshot", **cache_snapshot())
    finally:
        obs.shutdown()

    summary = summarize_trace(*read_trace(trace_out))
    return {
        "untraced_sweep_seconds": untraced_s,
        "traced_sweep_seconds": traced_s,
        "tracing_overhead_pct": (traced_s / untraced_s - 1.0) * 100.0,
        "bit_identical": bool(np.array_equal(untraced, traced)),
        "trace_file": str(trace_out),
        "n_spans": summary.n_spans,
        "phases": phase_rows(summary),
    }


def bench_cache_policies(configs, profile, reduced: bool,
                         trace_out: Path) -> dict:
    """Repeated chunked sweeps under every policy, plus capture overhead.

    The design space is swept in chunks (one cache entry each): every pass
    scans all chunks in order while re-sweeping a 3-chunk hot set between
    the cold ones, with ``max_entries`` far below the chunk count. That is
    the regime where policies differ — the scan thrashes a recency-only
    tier while the hot set rewards frequency/ghost tracking. Results must
    be bit-identical whichever policy manages the tier.
    """
    n_chunks = 12 if reduced else 24
    passes = 2 if reduced else 3
    max_entries = max(2, n_chunks // 3)
    chunk_size = (len(configs) + n_chunks - 1) // n_chunks
    chunks = [configs[i:i + chunk_size]
              for i in range(0, len(configs), chunk_size)]
    hot = chunks[:3]

    def workload(store: ResultCache) -> float:
        total = 0.0
        for _ in range(passes):
            for i, chunk in enumerate(chunks):
                total += float(
                    sweep_design_space(chunk, profile, cache=store).sum())
                total += float(
                    sweep_design_space(hot[i % len(hot)], profile,
                                       cache=store).sum())
        return total

    per_policy = {}
    checksums = set()
    for policy in available_policies():
        store = ResultCache(max_entries=max_entries, policy=policy)
        seconds, checksum = _timed(lambda: workload(store))
        stats = store.stats()
        checksums.add(checksum)
        per_policy[policy] = {
            "seconds": seconds,
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate,
            "counters": store.memory.counters(),
        }

    # Capture overhead on an all-hit workload: one pass warms a tier big
    # enough to hold every chunk, then timed passes are pure memory hits —
    # the path the recorder hook sits on.
    warm = ResultCache(max_entries=len(chunks) + 1)
    workload(warm)
    off_s, _ = _timed(lambda: workload(warm), repeats=3)
    trace_out.parent.mkdir(parents=True, exist_ok=True)
    trace_out.unlink(missing_ok=True)
    configure_capture(trace_out)
    try:
        on_s, _ = _timed(lambda: workload(warm), repeats=3)
        n_recorded = get_recorder().n_recorded
    finally:
        shutdown_capture()
    return {
        "n_chunks": len(chunks),
        "passes": passes,
        "max_entries": max_entries,
        "per_policy": per_policy,
        "bit_identical": len(checksums) == 1,
        "capture_off_seconds": off_s,
        "capture_on_seconds": on_s,
        "capture_overhead_pct": (on_s / off_s - 1.0) * 100.0,
        "capture_records": n_recorded,
        "capture_file": str(trace_out),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--app", default="gcc",
                        help="workload profile to benchmark (default gcc)")
    parser.add_argument("--reduced", action="store_true",
                        help="smoke mode: fewer CV repetitions in the rate sweep")
    parser.add_argument("--out", default=str(RESULTS_DIR / "BENCH_perf.json"),
                        metavar="PATH", help="where to write the JSON report")
    args = parser.parse_args(argv)

    import tempfile

    configs = list(enumerate_design_space())
    profile = get_profile(args.app)
    report = {
        "schema": "repro-bench-perf/1",
        "app": args.app,
        "reduced": args.reduced,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": __import__("os").cpu_count(),
        "unix_time": time.time(),
        "layers": {},
    }

    print(f"[1/6] batch simulation vs scalar oracle ({len(configs)} configs)...")
    report["layers"]["batch_simulation"] = sim = bench_batch_simulation(
        configs, profile)
    print(f"      scalar {sim['scalar_seconds']:.3f}s  batch "
          f"{sim['batch_seconds']:.3f}s  speedup {sim['speedup']:.1f}x  "
          f"bit-identical {sim['bit_identical']}")

    print("[2/6] zero-copy parallel path...")
    report["layers"]["parallel_shm"] = par = bench_parallel_shm(configs, profile)
    print(f"      serial {par['serial_batch_seconds']:.3f}s  parallel warm "
          f"{par['parallel_warm_seconds']:.3f}s  bit-identical "
          f"{par['bit_identical']}")

    print("[3/6] result cache (cold/warm/disk)...")
    with tempfile.TemporaryDirectory() as tmp:
        report["layers"]["result_cache"] = rc = bench_result_cache(
            configs, profile, Path(tmp))
    print(f"      cold {rc['cold_seconds']:.3f}s  warm {rc['warm_seconds']:.4f}s  "
          f"disk-warm {rc['disk_warm_seconds']:.4f}s")

    print("[4/6] two-rate sampled-DSE sweep with cache counters...")
    report["rate_sweep"] = sweep = bench_rate_sweep(configs, profile, args.reduced)
    for row in sweep["per_rate"]:
        print(f"      rate {row['rate']:.2f}: {row['seconds']:.2f}s  "
              f"matrix hits {row['design_matrix_hits']}  "
              f"misses {row['design_matrix_misses']}")

    print("[5/6] observability overhead (traced vs untraced sweep)...")
    trace_out = Path(args.out).parent / "BENCH_trace.jsonl"
    report["layers"]["observability"] = ob = bench_observability(
        configs, profile, args.reduced, trace_out)
    print(f"      untraced {ob['untraced_sweep_seconds']:.3f}s  traced "
          f"{ob['traced_sweep_seconds']:.3f}s  overhead "
          f"{ob['tracing_overhead_pct']:+.2f}%  bit-identical "
          f"{ob['bit_identical']}")
    for row in ob["phases"]:
        print(f"      phase {row['phase']:<12} count={row['count']:<4} "
              f"total={row['total_s']:.4f}s")

    print("[6/6] eviction policies under a repeated chunked sweep...")
    cache_trace_out = Path(args.out).parent / "BENCH_cachetrace.jsonl"
    report["layers"]["cache_policies"] = cp = bench_cache_policies(
        configs, profile, args.reduced, cache_trace_out)
    for policy, row in sorted(cp["per_policy"].items()):
        print(f"      {policy:<4} {row['seconds']:.3f}s  hits {row['hits']:<5} "
              f"misses {row['misses']:<5} hit-rate {row['hit_rate']:.3f}  "
              f"evictions {row['counters']['evictions']}")
    print(f"      capture off {cp['capture_off_seconds']:.4f}s  on "
          f"{cp['capture_on_seconds']:.4f}s  overhead "
          f"{cp['capture_overhead_pct']:+.2f}%  "
          f"({cp['capture_records']} records)  bit-identical "
          f"{cp['bit_identical']}")

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    print(f"wrote {trace_out}")

    diverged = not (sim["bit_identical"] and par["bit_identical"]
                    and ob["bit_identical"])
    if diverged:
        print("FATAL: batched/scalar or traced/untraced sweep outputs diverged",
              file=sys.stderr)
        return 2
    if not (rc["bit_identical"] and sweep["second_rate_nonzero_hits"]):
        print("FATAL: cache layers changed results or produced no reuse",
              file=sys.stderr)
        return 3
    if not cp["bit_identical"]:
        print("FATAL: eviction policies disagreed on sweep results",
              file=sys.stderr)
        return 4
    return 0


if __name__ == "__main__":
    sys.exit(main())
