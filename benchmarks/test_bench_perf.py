"""Benchmark: the perf harness runs clean and meets its speedup floor."""

from __future__ import annotations

import json
from pathlib import Path

from perf_harness import RESULTS_DIR, main


def test_perf_harness_smoke():
    out = RESULTS_DIR / "BENCH_perf.json"
    assert main(["--reduced", "--out", str(out)]) == 0

    report = json.loads(Path(out).read_text())
    sim = report["layers"]["batch_simulation"]
    assert sim["bit_identical"]
    assert sim["n_configs"] == 4608
    assert sim["speedup"] >= 5.0, f"batch speedup regressed: {sim['speedup']:.1f}x"
    assert report["layers"]["parallel_shm"]["bit_identical"]
    assert report["layers"]["result_cache"]["bit_identical"]
    assert report["rate_sweep"]["second_rate_nonzero_hits"]
