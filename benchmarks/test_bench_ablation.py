"""Ablations of the design choices DESIGN.md calls out.

1. **max vs mean** CV-estimate statistic for the select meta-method (the
   paper argues max "gives a closer estimate").
2. **Sampling-rate extension** beyond the paper's 1-5% (0.5%-10%).
3. **Interval fast path vs detailed pipeline model** — how closely the
   surrogate's training data tracks the reference simulator.
4. **Early stopping on/off** for chronological NNs — quantifies the
   over-fitting mechanism the paper blames for NN's chronological failure.
"""

import numpy as np

from repro.core import model_builders, run_sampled_dse
from repro.core.chronological import chronological_datasets
from repro.ml.nn.model import NeuralNetworkModel
from repro.simulator import (
    design_space_dataset,
    get_profile,
    simulate,
    simulate_detailed,
    generate_trace,
    sweep_design_space,
)
from repro.specdata import generate_family_records
from repro.util.stats import mean_absolute_percentage_error
from repro.util.tables import format_table

SEED = 2008


def test_ablation_select_statistic(benchmark, design_space, emit):
    """Does select-by-max beat select-by-mean, as the paper claims?"""
    cycles = sweep_design_space(design_space, get_profile("mcf"))
    space = design_space_dataset(design_space, cycles)
    builders = model_builders(("NN-E", "NN-S", "LR-B"), seed=SEED)

    def run():
        out = {}
        for stat in ("max", "mean"):
            rng = np.random.default_rng((SEED, 3))  # same samples per stat
            res = run_sampled_dse(space, builders, 0.02, rng,
                                  select_statistic=stat)
            out[stat] = (res.select_label, res.select_true_error)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[stat, label, err] for stat, (label, err) in out.items()]
    emit("ablation_select_statistic",
         format_table(["statistic", "picked", "true %err"], rows,
                      title="[Ablation] select statistic (mcf @ 2%)"))
    # Both statistics must pick a model whose true error is competitive.
    for label, err in out.values():
        assert err < 15.0


def test_ablation_rate_extension(benchmark, design_space, emit):
    """Error vs sampling rate outside the paper's 1-5% window."""
    cycles = sweep_design_space(design_space, get_profile("gcc"))
    space = design_space_dataset(design_space, cycles)
    builders = model_builders(("NN-E",), seed=SEED)
    rates = [0.005, 0.01, 0.05, 0.10]

    def run():
        rng = np.random.default_rng((SEED, 4))
        return [run_sampled_dse(space, builders, r, rng) for r in rates]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{r.rate:.1%}", r.n_sampled, r.outcomes["NN-E"].true_error]
            for r in results]
    emit("ablation_rate_extension",
         format_table(["rate", "n", "NN-E true %err"], rows,
                      title="[Ablation] sampling-rate extension (gcc)"))
    # 10% sampling must beat 0.5% sampling decisively.
    assert results[-1].outcomes["NN-E"].true_error < (
        results[0].outcomes["NN-E"].true_error)


def test_ablation_fast_vs_detailed(benchmark, design_space, emit):
    """How well does the interval model track the detailed simulator?"""
    prof = get_profile("gcc")
    trace = generate_trace(prof, 120_000, seed=SEED)
    pick = np.random.default_rng(SEED).choice(len(design_space), 24, replace=False)
    subset = [design_space[i] for i in pick]

    def run():
        det = np.array([simulate_detailed(trace, c).cpi for c in subset])
        fast = np.array([simulate(c, prof, mode="interval").cpi for c in subset])
        return det, fast

    det, fast = benchmark.pedantic(run, rounds=1, iterations=1)
    corr = float(np.corrcoef(det, fast)[0, 1])
    mape = mean_absolute_percentage_error(fast * det.mean() / fast.mean(), det)
    emit("ablation_fast_vs_detailed",
         format_table(
             ["metric", "value"],
             [["rank correlation", corr], ["scale-adjusted MAPE %", mape]],
             title="[Ablation] interval fast path vs detailed pipeline (gcc, 24 configs)",
         ))
    # The fast path must rank configurations like the reference model.
    assert corr > 0.6


def test_ablation_nn_early_stopping(benchmark, emit):
    """Chronological NN with vs without its validation-based early stop."""
    records = generate_family_records("opteron", seed=SEED)
    train, test = chronological_datasets("opteron", records=records)

    def run():
        stopped = NeuralNetworkModel("quick", seed=SEED).fit(train)
        err_stop = mean_absolute_percentage_error(stopped.predict(test), test.target)

        # Disable the internal holdout: train on everything to convergence.
        import repro.ml.nn.methods as methods

        orig = methods._split
        methods._split = lambda X, y, rng, val_fraction=0.25: (X, y, X, y)
        try:
            overfit = NeuralNetworkModel("quick", seed=SEED).fit(train)
        finally:
            methods._split = orig
        err_over = mean_absolute_percentage_error(overfit.predict(test), test.target)
        return err_stop, err_over

    err_stop, err_over = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_nn_early_stopping",
         format_table(
             ["variant", "2006 %err"],
             [["with early stopping", err_stop], ["trained to convergence", err_over]],
             title="[Ablation] NN early stopping on chronological opteron",
         ))
    # Both over-fit relative to LR; convergence training must not be better
    # by a wide margin (the over-fitting mechanism).
    assert err_stop < err_over * 2.5


def test_ablation_interaction_regression(benchmark, design_space, emit):
    """Extension: does degree-2 feature expansion close the LR-vs-NN gap?

    Lee & Brooks (the paper's ref [3]) argue regression needs non-linear
    terms for architectural prediction. On our most interaction-heavy
    surface (mcf), interaction-augmented forward selection should rival
    NN-E where plain LR-B cannot.
    """
    from repro.ml.linear import LinearRegressionModel
    from repro.ml.nn import NeuralNetworkModel

    cycles = sweep_design_space(design_space, get_profile("mcf"))
    space = design_space_dataset(design_space, cycles)
    sample, _ = space.sample(138, np.random.default_rng((SEED, 6)))  # 3%

    def run():
        out = {}
        for model in (LinearRegressionModel("backward"),
                      LinearRegressionModel("forward", interactions=True),
                      NeuralNetworkModel("exhaustive", seed=SEED)):
            model.fit(sample)
            out[model.name] = mean_absolute_percentage_error(
                model.predict(space), space.target)
        return out

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_interaction_lr", format_table(
        ["model", "true %err (mcf @ 3%)"],
        [[k, v] for k, v in errors.items()],
        title="[Ablation] interaction-augmented regression vs plain LR vs NN",
    ))
    assert errors["LR-F+int"] < errors["LR-B"] / 2
