"""Load drill: hammer the live service, replay the trace, gate the SLOs.

End-to-end exercise of the load-generation harness (``repro.loadgen``)
against the real supervisor-backed job service, through the public CLI
surface only — the way CI drives it:

1. **Live run** — a ``repro serve`` daemon (2 workers, drain-on-idle) is
   booted on a fresh spool and ``repro loadgen run`` drives a seeded
   closed-loop phase-shifting workload into it, emitting the
   ``repro-reqtrace/1`` request trace and the ``repro-loadreport/1``
   client-observed report.
2. **Bit-identical replay** — a second daemon on a second fresh spool
   replays the recorded trace (``repro loadgen replay``). The trace the
   replay re-emits must equal the original **byte for byte** (header
   passthrough included): that is the determinism contract of
   ``repro-reqtrace/1``.
3. **Identical job results** — both spools must hold the same done job
   set, and every job's cycle vector must be ``np.array_equal`` across
   the two runs. A replay that changes results is not a replay.
4. **Pinned outcome counts** — every request in both runs must land
   ``done``: zero shed, zero timeouts, zero failures. The workload is
   sized under the admission bound on purpose; sheds here mean the
   pacing window or the spool admission logic regressed.
5. **Latency-SLO envelope** — the client-observed report is gated
   against pinned references: throughput may not fall below
   ``PINNED["throughput_floor_rps"]`` and p99 end-to-end latency may not
   exceed ``PINNED["p99_ceiling_s"]``. The envelopes are generous (CI
   machines are noisy); a breach means requests sat un-drained for tens
   of seconds, not that a percentile wobbled.

Artifacts (run/replay traces, both load reports, ``BENCH_load.json``
with the gate verdicts) are copied to ``benchmarks/results/`` for CI
upload.

Run::

    PYTHONPATH=src python benchmarks/load_harness.py [--out-dir PATH]

Exit codes: 0 ok; 2 a drive step failed (serve/loadgen CLI errors);
3 a determinism gate failed (trace bytes or job results differ, or
outcome counts moved); 4 the latency-SLO envelope was breached.
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct checkout execution
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The pinned workload. Changing any of these regenerates the scenario, so
#: the pinned outcome counts below must be re-derived alongside.
WORKLOAD_ARGS = (
    "--workload", "phase_shift", "--pacing", "closed",
    "--n-requests", "14", "--n-keys", "6", "--concurrency", "4",
    "--n-phases", "2", "--seed", "20260808",
    "--n-instructions", "1000000",
)
N_REQUESTS = 14

#: Pinned references for the SLO gate (see module docstring). The outcome
#: counts are exact; the throughput floor and p99 ceiling are envelopes
#: (reference +/- epsilon collapsed to the failing direction) so scheduler
#: noise on shared CI runners cannot flake the job, while a stalled or
#: un-drained queue still fails it loudly.
PINNED = {
    "outcomes": {"done": N_REQUESTS, "failed": 0, "shed": 0, "timeout": 0},
    "throughput_floor_rps": 0.2,
    "p99_ceiling_s": 30.0,
}

SERVE_SEED = 7
LOADGEN_TIMEOUT_S = 90.0
SERVE_MAX_RUNTIME_S = 150.0
SERVE_EXIT_WAIT_S = 60.0


def _fail(msg: str, code: int) -> None:
    print(f"load_harness: FAIL: {msg}", file=sys.stderr)
    sys.exit(code)


def _cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, "-m", "repro", *argv],
                          capture_output=True, text=True)


def _serve(spool: Path, log: Path) -> subprocess.Popen:
    """Boot a drain-on-idle daemon on ``spool`` in the background.

    The idle grace is the window the loadgen client has to get its first
    submission in before the daemon decides the queue is staying empty.
    Output goes to ``log`` (a pipe could fill and wedge the daemon).
    """
    log_fh = open(log, "w", encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--spool", str(spool),
         "--workers", "2", "--lease-ttl", "5", "--heartbeat-timeout", "10",
         "--drain-on-idle", "--idle-grace", "8",
         "--max-runtime", str(SERVE_MAX_RUNTIME_S),
         "--seed", str(SERVE_SEED)],
        stdout=log_fh, stderr=subprocess.STDOUT)
    log_fh.close()
    return proc


def _reap(daemon: subprocess.Popen, label: str, log: Path) -> None:
    try:
        rc = daemon.wait(timeout=SERVE_EXIT_WAIT_S)
    except subprocess.TimeoutExpired:
        daemon.kill()
        daemon.wait()
        _fail(f"{label} daemon did not drain to idle within "
              f"{SERVE_EXIT_WAIT_S:.0f}s", 2)
    if rc != 0:
        _fail(f"{label} daemon exited rc={rc}: {log.read_text()[-2000:]}", 2)


def _drive(label: str, spool: Path, loadgen_argv: list[str]) -> None:
    """One serve+loadgen cycle; dies with exit 2 on any CLI failure."""
    log = spool.parent / f"serve-{label}.log"
    daemon = _serve(spool, log)
    try:
        p = _cli(*loadgen_argv)
    except BaseException:
        daemon.kill()
        raise
    if p.returncode != 0:
        daemon.kill()
        daemon.wait()
        _fail(f"loadgen {label} rc={p.returncode}: {p.stderr}", 2)
    _reap(daemon, label, log)
    print(f"load_harness: {label} complete on {spool.name}")


def _check_determinism(run_trace: Path, replay_trace: Path,
                       run_doc: dict, replay_doc: dict,
                       run_spool: Path, replay_spool: Path,
                       notes: list[str]) -> list[str]:
    from repro.service import JobSpool

    failures: list[str] = []
    if run_trace.read_bytes() == replay_trace.read_bytes():
        notes.append("replayed trace is bit-identical to the recorded run")
    else:
        failures.append("replayed trace differs from the recorded run "
                        "(repro-reqtrace/1 byte-identity broken)")

    for label, doc in (("run", run_doc), ("replay", replay_doc)):
        if doc["outcomes"] != PINNED["outcomes"]:
            failures.append(
                f"{label} outcomes {doc['outcomes']} != pinned "
                f"{PINNED['outcomes']}")
    if not failures:
        notes.append(f"all {N_REQUESTS} requests done in both runs "
                     "(zero shed/timeout/failed)")

    run_jobs = JobSpool.open(run_spool).jobs()
    replay_jobs = JobSpool.open(replay_spool).jobs()
    run_done = {j for j, v in run_jobs.items() if v.state == "done"}
    replay_done = {j for j, v in replay_jobs.items() if v.state == "done"}
    if run_done != replay_done:
        failures.append(
            f"done job sets differ: run has {len(run_done)}, replay has "
            f"{len(replay_done)}, symmetric difference "
            f"{sorted(run_done ^ replay_done)[:4]}")
    else:
        run_store = JobSpool.open(run_spool)
        replay_store = JobSpool.open(replay_spool)
        diverged = [jid for jid in sorted(run_done)
                    if not np.array_equal(
                        np.asarray(run_store.result(jid)["cycles"]),
                        np.asarray(replay_store.result(jid)["cycles"]))]
        if diverged:
            failures.append(
                f"{len(diverged)} job result(s) differ between run and "
                f"replay: {diverged[:4]}")
        else:
            notes.append(f"{len(run_done)} job results bit-identical "
                         "between run and replay")
    return failures


def _check_slo(run_doc: dict, notes: list[str]) -> list[str]:
    failures: list[str] = []
    rps = run_doc["throughput_rps"]
    p99 = run_doc["latency"]["p99"]
    if rps < PINNED["throughput_floor_rps"]:
        failures.append(
            f"throughput {rps:.3f} rps below pinned floor "
            f"{PINNED['throughput_floor_rps']} rps")
    else:
        notes.append(f"throughput {rps:.2f} rps (floor "
                     f"{PINNED['throughput_floor_rps']})")
    if p99 is None or p99 > PINNED["p99_ceiling_s"]:
        failures.append(
            f"client-observed p99 {p99} s above pinned ceiling "
            f"{PINNED['p99_ceiling_s']} s")
    else:
        notes.append(f"client-observed p99 {p99:.2f} s (ceiling "
                     f"{PINNED['p99_ceiling_s']})")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=str(RESULTS_DIR), metavar="PATH",
                        help="artifact directory (default benchmarks/results)")
    parser.add_argument("--print-pins", action="store_true",
                        help="print the pinned references as JSON and exit")
    args = parser.parse_args(argv)
    if args.print_pins:
        print(json.dumps(PINNED, indent=2, sort_keys=True))
        return 0

    from repro.loadgen import read_report

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    with tempfile.TemporaryDirectory(prefix="repro-load-") as tmp:
        work = Path(tmp)
        run_spool = work / "spool-run"
        replay_spool = work / "spool-replay"
        run_trace = work / "run_trace.jsonl"
        replay_trace = work / "replay_trace.jsonl"
        run_report = work / "run_report.json"
        replay_report = work / "replay_report.json"

        t0 = time.monotonic()
        _drive("run", run_spool, [
            "loadgen", "run", *WORKLOAD_ARGS,
            "--spool", str(run_spool), "--timeout", str(LOADGEN_TIMEOUT_S),
            "--trace-out", str(run_trace), "--report-out", str(run_report)])
        _drive("replay", replay_spool, [
            "loadgen", "replay", str(run_trace),
            "--spool", str(replay_spool),
            "--timeout", str(LOADGEN_TIMEOUT_S),
            "--trace-out", str(replay_trace),
            "--report-out", str(replay_report)])
        wall_s = time.monotonic() - t0

        run_doc = read_report(run_report)
        replay_doc = read_report(replay_report)
        notes: list[str] = []
        det_failures = _check_determinism(
            run_trace, replay_trace, run_doc, replay_doc,
            run_spool, replay_spool, notes)
        slo_failures = _check_slo(run_doc, notes)

        report = {
            "schema": "repro-bench-load/1",
            "workload": run_doc.get("workload"),
            "pinned": PINNED,
            "run": {
                "throughput_rps": run_doc["throughput_rps"],
                "latency": run_doc["latency"],
                "outcomes": run_doc["outcomes"],
                "wall_s": run_doc["wall_s"],
            },
            "replay": {
                "throughput_rps": replay_doc["throughput_rps"],
                "latency": replay_doc["latency"],
                "outcomes": replay_doc["outcomes"],
                "wall_s": replay_doc["wall_s"],
            },
            "harness_wall_s": round(wall_s, 2),
            "checks": {
                "failures": det_failures + slo_failures,
                "notes": notes,
            },
            "unix_time": time.time(),
        }
        (out_dir / "BENCH_load.json").write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
        for src, name in ((run_trace, "BENCH_load_trace.jsonl"),
                          (replay_trace, "BENCH_load_replay_trace.jsonl"),
                          (run_report, "BENCH_load_report.json"),
                          (replay_report, "BENCH_load_replay_report.json")):
            shutil.copy(src, out_dir / name)

    for note in notes:
        print(f"load_harness: {note}")
    print(f"load_harness: report -> {out_dir / 'BENCH_load.json'}")
    if det_failures:
        for failure in det_failures + slo_failures:
            print(f"load_harness: FAIL: {failure}", file=sys.stderr)
        return 3
    if slo_failures:
        for failure in slo_failures:
            print(f"load_harness: FAIL: {failure}", file=sys.stderr)
        return 4
    print("load_harness: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
