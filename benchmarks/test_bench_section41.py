"""§4.1 data profiles: regenerate the paper's count/range/variation rows.

The paper characterizes every data set before modeling it: per simulated
application, "the range of the simulated execution cycles (i.e., the ratio
of the fastest to slowest configuration) and the variance:
Applu/1.62/0.16, Equake/1.73/0.19, Gcc/5.27/0.33, Mesa/2.22/0.19,
Mcf/6.38/0.71"; per processor family, records/range/variation such as
"Opteron based systems has 138 records with a range of 1.40 times ... and
variation of 0.08".
"""

from repro.simulator import PRESENTED_APPS, get_profile, sweep_design_space
from repro.specdata import FAMILY_ORDER, generate_family_records
from repro.util.stats import profile_responses
from repro.util.tables import format_table

SEED = 2008

PAPER_APPS = {
    "applu": (1.62, 0.16), "equake": (1.73, 0.19), "gcc": (5.27, 0.33),
    "mesa": (2.22, 0.19), "mcf": (6.38, 0.71),
}
PAPER_FAMILIES = {
    "xeon": (216, 1.34, 0.09), "pentium-4": (66, 3.72, 0.34),
    "pentium-d": (71, 1.45, 0.10), "opteron": (138, 1.40, 0.08),
    "opteron-2": (152, 1.58, 0.11), "opteron-4": (158, 1.70, 0.12),
    "opteron-8": (58, 1.68, 0.13),
}


def test_section41_simulation_profiles(benchmark, design_space, emit):
    def run():
        return {
            app: profile_responses(sweep_design_space(design_space, get_profile(app)))
            for app in PRESENTED_APPS
        }

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [app, p.range, PAPER_APPS[app][0], p.variation, PAPER_APPS[app][1]]
        for app, p in profiles.items()
    ]
    emit("section41_simulation", format_table(
        ["app", "range", "paper", "variation", "paper "],
        rows, title="[Sec 4.1] simulated cycle profiles (4608 configs)",
    ))
    # Cross-app ordering must match the paper exactly.
    ranges = {a: p.range for a, p in profiles.items()}
    assert ranges["mcf"] > ranges["gcc"] > ranges["mesa"]
    assert ranges["mesa"] > ranges["equake"] > ranges["applu"]


def test_section41_family_profiles(benchmark, emit):
    def run():
        out = {}
        for fam in FAMILY_ORDER:
            rates = [r.specint_rate for r in generate_family_records(fam, seed=SEED)]
            out[fam] = profile_responses(rates)
        return out

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [fam, p.count, PAPER_FAMILIES[fam][0], p.range, PAPER_FAMILIES[fam][1],
         p.variation, PAPER_FAMILIES[fam][2]]
        for fam, p in profiles.items()
    ]
    emit("section41_families", format_table(
        ["family", "n", "paper", "range", "paper ", "CV", "paper  "],
        rows, title="[Sec 4.1] SPEC announcement profiles per family",
    ))
    for fam, p in profiles.items():
        assert p.count == PAPER_FAMILIES[fam][0], fam
