"""Disk-chaos drill: compact under live traffic on a faulty disk, lose nothing.

End-to-end exercise of the crash-consistent compaction + disk-fault
hardening (DESIGN §15), gating on the PR's pin: for every injected crash
point in the compaction swap and under every injected disk fault during a
live workload, the reopened spool folds to the same terminal job set and
bit-identical job results as an uncompacted, fault-free oracle.

1. **Fault-free oracle** — a pristine spool drains the workload with no
   compaction and no faults; its per-job results (canonical JSON) are the
   oracle every later phase must reproduce exactly.
2. **Compaction mid-traffic** — a fresh spool drains the same workload
   while ``compact()`` runs between worker iterations (snapshot
   generations advance while jobs are claimed, running, and completing).
   Gate: identical terminal set, bit-identical results, generation > 0.
3. **Crash matrix** — for each named crash point inside the swap protocol
   (``pre-snapshot-rename``, ``post-snapshot-rename``, ``post-log-swap``)
   the compactor "dies" there (:class:`~repro.robust.diskchaos.SimulatedCrash`)
   mid-workload; the reopened spool must fold to the same state, keep
   serving, and still converge to the oracle.
4. **Seeded fault window** — a :class:`~repro.robust.diskchaos.DiskFaultInjector`
   makes writes/fsyncs/renames fail probabilistically while workers drain
   and the compactor keeps compacting. Every failure must surface typed
   (:class:`~repro.errors.ServiceError` shed, breaker read-only mode) —
   any other exception fails the drill — and once the disk heals the spool
   must drain to the oracle with zero lost and zero duplicated jobs.
5. **fsck gate** — ``repro spool verify --expect-jobs`` runs as a
   subprocess against the post-drill spool and must exit 0; its report,
   the final snapshot, and the drill report are the CI artifacts.

Artifacts (``BENCH_diskchaos.json``, ``BENCH_diskchaos_verify.json``,
``BENCH_diskchaos_spoolsnap.json``) land in ``benchmarks/results/``.

Run::

    PYTHONPATH=src python benchmarks/disk_chaos_drill.py [--out-dir PATH]

Exit codes: 0 ok; 2 a drill invariant failed (details on stderr).
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

APPS = ("gcc", "mcf", "gzip", "art", "swim")
SLICE_STOP = 12
N_INSTR = 1_000_000
SEED = 11
DRAIN_DEADLINE_S = 120.0


def _fail(msg: str) -> None:
    print(f"disk_chaos_drill: FAIL: {msg}", file=sys.stderr)
    sys.exit(2)


def _specs():
    from repro.service import JobSpec

    return [JobSpec(kind="sweep", app=app, start=0, stop=SLICE_STOP,
                    n_instructions=N_INSTR) for app in APPS]


def _canonical(doc) -> str:
    return json.dumps(doc, sort_keys=True, default=str)


def _terminal_map(spool) -> dict[str, str]:
    return {jid: v.state for jid, v in spool.jobs().items()
            if v.state in ("done", "failed")}


def _drain(spool, worker_name: str, *, compact_every: int = 0,
           tolerate_typed: bool = False) -> int:
    """Run an in-process worker until the queue is drained.

    ``compact_every`` > 0 compacts between iterations — live traffic over
    an advancing snapshot generation. ``tolerate_typed`` allows typed
    service errors (shed, read-only mode) and compaction failures, which
    is the phase-4 contract: degrade, retry, never crash, never wedge.
    """
    from repro.errors import ServiceError
    from repro.service import Worker, WorkerConfig
    from repro.service.compaction import CompactionPolicy, compact

    w = Worker(WorkerConfig(root=str(spool.root), name=worker_name,
                            seed=SEED), spool=spool)
    deadline = time.monotonic() + DRAIN_DEADLINE_S
    n_compactions = 0
    i = 0
    while time.monotonic() < deadline:
        pending = [v for v in spool.jobs().values()
                   if v.state in ("pending", "running")]
        if not pending:
            return n_compactions
        try:
            w.run_once()
        except ServiceError:
            if not tolerate_typed:
                raise
            time.sleep(0.05)
        i += 1
        if compact_every and i % compact_every == 0:
            try:
                compact(spool, CompactionPolicy())
                n_compactions += 1
            except (ServiceError, OSError):
                if not tolerate_typed:
                    raise
        time.sleep(0.01)  # leases from failed completes must get to expire
    _fail(f"{worker_name}: queue did not drain within {DRAIN_DEADLINE_S:g}s")
    return n_compactions


def _check_against_oracle(spool, oracle_results: dict[str, str],
                          phase: str) -> None:
    terminal = _terminal_map(spool)
    lost = sorted(set(oracle_results) - set(terminal))
    extra = sorted(set(terminal) - set(oracle_results))
    if lost or extra:
        _fail(f"{phase}: terminal set diverged — lost {lost}, extra {extra}")
    not_done = [j for j, s in terminal.items() if s != "done"]
    if not_done:
        _fail(f"{phase}: jobs not done: {[j[:12] for j in not_done]}")
    for jid, want in oracle_results.items():
        got = _canonical(spool.result(jid))
        if got != want:
            _fail(f"{phase}: job {jid[:12]} result differs from the "
                  "fault-free uncompacted oracle")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=None,
                        help="artifact directory (default benchmarks/results)")
    args = parser.parse_args()
    out_dir = Path(args.out_dir) if args.out_dir else \
        Path(__file__).parent / "results"
    out_dir.mkdir(parents=True, exist_ok=True)

    from repro.robust import DiskFaultInjector, SimulatedCrash, diskchaos
    from repro.service import JobSpool, SpoolConfig
    from repro.service.compaction import (
        CRASH_POINTS,
        CompactionPolicy,
        compact,
        verify_spool,
    )

    workdir = Path(tempfile.mkdtemp(prefix="repro-diskchaos-"))
    report: dict = {"seed": SEED, "apps": list(APPS)}
    config = SpoolConfig(max_depth=len(APPS) + 2, lease_ttl=0.3)

    # 1. Fault-free, uncompacted oracle.
    oracle_spool = JobSpool.ensure(workdir / "oracle", config)
    jids = [oracle_spool.submit(s) for s in _specs()]
    _drain(oracle_spool, "oracle-w")
    oracle_terminal = _terminal_map(oracle_spool)
    if sorted(oracle_terminal) != sorted(jids) or \
            set(oracle_terminal.values()) != {"done"}:
        _fail(f"oracle run did not complete every job: {oracle_terminal}")
    oracle_results = {jid: _canonical(oracle_spool.result(jid))
                      for jid in jids}
    report["n_jobs"] = len(jids)
    print(f"disk_chaos_drill: oracle drained {len(jids)} jobs fault-free")

    # 2. Compaction running against live traffic.
    live_spool = JobSpool.ensure(workdir / "live", config)
    for s in _specs():
        live_spool.submit(s)
    n_compactions = _drain(live_spool, "live-w", compact_every=2)
    stats = compact(live_spool)  # one terminal fold over the finished state
    _check_against_oracle(live_spool, oracle_results, "mid-traffic compaction")
    report["mid_traffic_compactions"] = n_compactions + 1
    report["mid_traffic_generation"] = stats.generation
    if stats.generation < 2:
        _fail("mid-traffic phase never compacted while jobs were in flight")
    print(f"disk_chaos_drill: {stats.generation} generation(s) of compaction "
          "under live traffic, results bit-identical to the oracle")

    # 3. Crash matrix: die at every named point in the swap protocol.
    for point in CRASH_POINTS:
        crash_spool = JobSpool.ensure(workdir / f"crash-{point}", config)
        for s in _specs():
            crash_spool.submit(s)
        # Make progress first so the fold is non-trivial at crash time.
        from repro.service import Worker, WorkerConfig

        w = Worker(WorkerConfig(root=str(crash_spool.root),
                                name="crash-w", seed=SEED), spool=crash_spool)
        w.run_once()
        try:
            compact(crash_spool, crash_at=point)
        except SimulatedCrash:
            pass
        else:
            _fail(f"crash point {point!r} did not crash")
        survivor = JobSpool.open(crash_spool.root)
        verdict = verify_spool(survivor.root)
        if not verdict["ok"]:
            _fail(f"crash at {point}: verify failed: "
                  f"{[c for c in verdict['checks'] if not c['passed']]}")
        _drain(survivor, "survivor-w")
        compact(survivor)
        _check_against_oracle(survivor, oracle_results, f"crash at {point}")
        print(f"disk_chaos_drill: crash at {point}: recovered, drained, "
              "bit-identical")
    report["crash_points"] = list(CRASH_POINTS)

    # 4. Seeded fault window: sick disk under live traffic + compaction.
    chaos_spool = JobSpool.ensure(workdir / "chaos", config)
    for s in _specs():
        chaos_spool.submit(s)
    injector = DiskFaultInjector(seed=SEED, p_enospc=0.02, p_eio_write=0.02,
                                 p_short_write=0.08, p_eio_fsync=0.03,
                                 p_rename=0.03)
    t0 = time.monotonic()
    with diskchaos.injected(injector):
        window_end = time.monotonic() + 6.0
        from repro.errors import ServiceError
        from repro.service import Worker, WorkerConfig

        w = Worker(WorkerConfig(root=str(chaos_spool.root), name="chaos-w",
                                seed=SEED), spool=chaos_spool)
        i = 0
        while time.monotonic() < window_end:
            try:
                w.run_once()
            except ServiceError:
                time.sleep(0.05)
            except OSError as exc:
                _fail(f"fault window: untyped OSError escaped: {exc}")
            i += 1
            if i % 3 == 0:
                try:
                    compact(chaos_spool, CompactionPolicy())
                except (ServiceError, OSError):
                    pass  # typed degradation; next pass retries
            time.sleep(0.01)
            if not any(v.state in ("pending", "running")
                       for v in chaos_spool.jobs().values()):
                break
    report["fault_window_calls"] = dict(injector.calls)
    report["fault_window_fired"] = dict(injector.fired)
    if not injector.fired:
        _fail("fault window injected no faults — the drill proved nothing")
    # Disk healed: drain whatever the faults left behind and fold it down.
    _drain(chaos_spool, "heal-w", compact_every=4, tolerate_typed=True)
    final_stats = compact(chaos_spool)
    _check_against_oracle(chaos_spool, oracle_results, "fault window")
    report["fault_window_seconds"] = round(time.monotonic() - t0, 2)
    report["final_generation"] = final_stats.generation
    report["worker_sheds"] = sum(
        1 for e in (w.events or ()) if e.startswith("spool-shed:"))
    print(f"disk_chaos_drill: fault window fired {injector.fired}; healed "
          "spool drained to bit-identical results "
          f"({report['worker_sheds']} typed shed(s))")

    # 5. fsck gate through the CLI, against the expected-jobs oracle.
    expect_path = workdir / "expect.json"
    expect_path.write_text(json.dumps(oracle_terminal, sort_keys=True))
    verify_out = out_dir / "BENCH_diskchaos_verify.json"
    p = subprocess.run(
        [sys.executable, "-m", "repro", "spool", "verify",
         "--spool", str(chaos_spool.root),
         "--expect-jobs", str(expect_path), "--out", str(verify_out)],
        capture_output=True, text=True)
    print(p.stdout, end="")
    if p.returncode != 0:
        _fail(f"repro spool verify rc={p.returncode}:\n{p.stdout}{p.stderr}")
    report["verify_exit"] = p.returncode

    # Artifacts.
    shutil.copy(chaos_spool.snapshot_path,
                out_dir / "BENCH_diskchaos_spoolsnap.json")
    (out_dir / "BENCH_diskchaos.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"disk_chaos_drill: artifacts in {out_dir}")
    print("disk_chaos_drill: OK")
    shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
