"""Table 2: best chronological accuracy and winning method per family.

Paper values: Xeon 2.1 (LR-E), Pentium D 2.2 (LR-E), Pentium 4 1.5 (LR-E),
Opteron 2.1 (LR-B/LR-S), Opteron-2 3.1, Opteron-4 3.2, Opteron-8 3.5
(all LR-B/LR-S).
"""

from repro.core import table2
from repro.specdata import FAMILY_ORDER


def test_table2(benchmark, chrono_cache, emit):
    def build():
        return {fam: chrono_cache(fam) for fam in FAMILY_ORDER}

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("table2", f"[Table 2] {table2(results)}")

    for fam, res in results.items():
        # Every family's winner is a linear-regression method (Table 2).
        assert res.best_label.startswith("LR"), fam
        # Best errors land in the paper's 1.5-3.5% regime (allow ~2.5x).
        assert res.best_error < 9.0, fam
