"""Service drill: kill a worker mid-run and prove nothing is lost.

End-to-end exercise of the fault-tolerant job service through its public
surface only (the ``repro serve`` / ``submit`` / ``jobs`` CLI plus the
spool directory), the way CI drives it:

1. **Pre-daemon submission** — a spool is created with a depth bound of 4
   and filled to that bound with real sweep jobs before any daemon exists
   (the queue is durable; the daemon is optional at submission time).
2. **Typed load shedding** — the fifth submission must be *rejected*, not
   queued and not hung, with the :class:`~repro.errors.ServiceOverloadError`
   exit code (12).
3. **Kill a worker mid-run** — the daemon starts with a chaos injector
   that SIGKILLs the first-generation workers mid-sweep. The supervisor
   must detect the deaths, restart the shards, re-dispatch the expired
   leases, and resume each interrupted job from its checkpoint journal.
4. **Bit-identical results** — every job's cycle vector must equal the
   serial in-process oracle exactly. Crash recovery that changes results
   is worse than crashing.
5. **External SIGKILL + deadline** — one more worker is murdered from
   outside (pid read from its heartbeat file, as an operator would), and a
   job submitted with an already-impossible deadline must fail with the
   :class:`~repro.errors.JobDeadlineExceeded` exit code (14).
6. **Observability plane** — the same chaos drill runs twice more on fresh
   spools, once plain and once with ``--obs --status-file``. The traced run
   must produce a merged timeline (``repro obs aggregate``) in which every
   job's spans share its single trace id across submit/lease/execute/retry
   and every record validates against ``repro-trace/1``; ``repro obs
   report`` must print non-empty p50/p95/p99 for all four SLO histograms;
   both runs must stay bit-identical to the serial oracle; and the traced
   run may not cost more than 5% extra wall-clock (with a small absolute
   floor so scheduler noise on a ~seconds-long drill cannot flake CI).

Artifacts (spool event log, job listing, merged timeline, obs report,
final status snapshot, drill report JSON) are copied to
``benchmarks/results/`` for CI upload.

Run::

    PYTHONPATH=src python benchmarks/service_drill.py [--out-dir PATH]

Exit codes: 0 ok; 2 a drill invariant failed (details on stderr).
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

APPS = ("gcc", "mcf", "gzip", "art")
SLICE_STOP = 60
N_INSTR = 1_000_000
SEED = 7


def _fail(msg: str) -> None:
    print(f"service_drill: FAIL: {msg}", file=sys.stderr)
    sys.exit(2)


def _cli(*argv: str, env: dict | None = None) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, "-m", "repro", *argv],
                          capture_output=True, text=True, env=env)


#: Traced-run overhead gate: fail beyond 5% — but only past an absolute
#: floor, so a ~20s drill cannot flake on a second of scheduler noise.
OVERHEAD_PCT = 5.0
OVERHEAD_FLOOR_S = 1.0

OBS_APPS = ("gcc", "mcf")


def _run_chaos_serve(spool_dir: Path, *extra: str) -> float:
    """Submit OBS_APPS jobs and drain them under chaos; returns wall-clock."""
    for app in OBS_APPS:
        p = _cli("submit", "--spool", str(spool_dir), "sweep", app,
                 "--stop", str(SLICE_STOP), "--n-instructions", str(N_INSTR))
        if p.returncode != 0:
            _fail(f"obs drill submit {app} rc={p.returncode}: {p.stderr}")
    t0 = time.monotonic()
    p = _cli("serve", "--spool", str(spool_dir), "--workers", "2",
             "--lease-ttl", "2", "--heartbeat-timeout", "5",
             "--drain-on-idle", "--max-runtime", "120",
             "--chaos-sigkill-at", "30", "--seed", str(SEED), *extra)
    elapsed = time.monotonic() - t0
    if p.returncode != 0:
        _fail(f"obs drill serve rc={p.returncode}: {p.stderr}")
    return elapsed


def obs_drill(workdir: Path, out_dir: Path, report: dict) -> None:
    """Step 6: the traced-vs-untraced chaos drill (see module docstring)."""
    from repro.obs import validate_record
    from repro.service import JobSpool
    from repro.simulator import (
        enumerate_design_space,
        get_profile,
        sweep_design_space,
    )

    plain_dir = workdir / "obs-plain"
    traced_dir = workdir / "obs-traced"
    status_file = workdir / "status.json"
    plain_s = _run_chaos_serve(plain_dir)
    traced_s = _run_chaos_serve(
        traced_dir, "--obs", "--status-file", str(status_file),
        "--status-interval", "0.5")
    print(f"service_drill: obs drill untraced {plain_s:.2f}s, "
          f"traced {traced_s:.2f}s")
    report["obs_untraced_seconds"] = round(plain_s, 2)
    report["obs_traced_seconds"] = round(traced_s, 2)
    overhead = traced_s - plain_s
    pct = 100.0 * overhead / plain_s if plain_s > 0 else 0.0
    report["obs_overhead_pct"] = round(pct, 2)
    if pct > OVERHEAD_PCT and overhead > OVERHEAD_FLOOR_S:
        _fail(f"tracing overhead {pct:.1f}% ({overhead:.2f}s) exceeds "
              f"{OVERHEAD_PCT:g}% — the plane is not cheap enough")

    # Both runs bit-identical to the serial oracle (and thus each other):
    # observability must never change results.
    configs = list(enumerate_design_space())[0:SLICE_STOP]
    for spool_dir, label in ((plain_dir, "untraced"), (traced_dir, "traced")):
        spool = JobSpool.open(spool_dir)
        views = spool.jobs()
        for app in OBS_APPS:
            oracle = np.asarray(sweep_design_space(
                configs, get_profile(app), n_instructions=N_INSTR))
            jid = next(j for j, v in views.items() if v.spec.app == app)
            if views[jid].state != "done":
                _fail(f"obs drill ({label}): {app} not done "
                      f"({views[jid].state})")
            if not np.array_equal(oracle, spool.result(jid)["cycles"]):
                _fail(f"obs drill ({label}): {app} diverged from the serial "
                      "oracle")
    print("service_drill: traced and untraced runs bit-identical to the "
          "oracle")
    report["obs_bit_identical"] = True

    # The kill drill must actually have exercised re-dispatch in the traced
    # run, or the trace-correlation assertions below prove nothing.
    traced_spool = JobSpool.open(traced_dir)
    traced_views = traced_spool.jobs()
    if sum(v.n_expired for v in traced_views.values()) < 1:
        _fail("obs drill: no lease re-dispatched in the traced run")

    # Merge the timeline through the CLI and validate every record.
    timeline_path = out_dir / "BENCH_service_timeline.jsonl"
    p = _cli("obs", "aggregate", "--spool", str(traced_dir),
             "--out", str(timeline_path))
    if p.returncode != 0:
        _fail(f"obs aggregate rc={p.returncode}: {p.stderr}")
    print(p.stdout, end="")
    records = [json.loads(line)
               for line in timeline_path.read_text().splitlines()]
    for rec in records:
        try:
            validate_record(rec)
        except ValueError as exc:
            _fail(f"merged timeline record invalid: {exc}")

    # Cross-process correlation: every job's records — queue events from
    # the submitting/serving processes AND execute spans from every worker
    # generation that touched it — share the job's single trace id.
    for jid, view in traced_views.items():
        mine = [r for r in records if r.get("trace_id") == jid]
        names = {r["name"] for r in mine}
        for required in ("spool.submit", "spool.lease", "job.execute",
                         "spool.done"):
            if required not in names:
                _fail(f"obs drill: trace {jid[:12]} is missing {required!r} "
                      f"(has {sorted(names)})")
        shards = {r["shard"] for r in mine if r["kind"] == "span"}
        # A SIGKILLed attempt never finishes its execute span (the record is
        # written at span exit), but its claim annotation is flushed up
        # front — so a re-dispatched job must show one claim per attempt,
        # all under the original trace id, plus the resumed attempt's
        # completed execute span.
        if view.n_expired > 0:
            claims = [r for r in mine if r["name"] == "job.claim"]
            if len(claims) < 2:
                _fail(f"obs drill: re-dispatched job {jid[:12]} has fewer "
                      "than 2 claim events — the resumed attempt did not "
                      "adopt the original trace id")
            if not [r for r in mine if r["name"] == "job.execute"]:
                _fail(f"obs drill: re-dispatched job {jid[:12]} has no "
                      "completed execute span")
        print(f"service_drill: trace {jid[:12]}: {len(mine)} record(s), "
              f"worker span(s) from {sorted(shards)}")
    stray = {r.get("trace_id") for r in records
             if r["name"] == "job.execute"} - set(traced_views)
    if stray:
        _fail(f"obs drill: execute spans with unknown trace ids: {stray}")
    report["obs_n_timeline_records"] = len(records)

    # SLO report: non-empty percentiles for all four histograms.
    p = _cli("obs", "report", "--spool", str(traced_dir))
    if p.returncode != 0:
        _fail(f"obs report rc={p.returncode}: {p.stderr}")
    (out_dir / "BENCH_service_obs_report.txt").write_text(p.stdout)
    for metric in ("queue_wait", "lease_to_start", "execute", "e2e"):
        row = next((ln for ln in p.stdout.splitlines()
                    if f" {metric} " in f" {ln} "), None)
        if row is None or " 0 " in f" {row} ":
            _fail(f"obs report: SLO histogram {metric!r} is empty or "
                  f"missing:\n{p.stdout}")
    print("service_drill: obs report has non-empty p50/p95/p99 for all "
          "four SLO histograms")

    # Status file: the final snapshot must be valid repro-status/1 showing
    # the drained service.
    try:
        status = json.loads(status_file.read_text())
    except (OSError, ValueError) as exc:
        _fail(f"status file unreadable: {exc}")
    if status.get("schema") != "repro-status/1" or not status.get("draining"):
        _fail(f"status file wrong shape: {status.get('schema')!r}, "
              f"draining={status.get('draining')!r}")
    if status["queue"]["done"] != len(OBS_APPS):
        _fail(f"status file queue counts wrong: {status['queue']}")
    shutil.copy(status_file, out_dir / "BENCH_service_status.json")
    report["obs_status_ok"] = True
    print("service_drill: status file shows the drained service")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=None,
                        help="artifact directory (default benchmarks/results)")
    args = parser.parse_args()
    out_dir = Path(args.out_dir) if args.out_dir else \
        Path(__file__).parent / "results"
    out_dir.mkdir(parents=True, exist_ok=True)

    from repro.service import JobSpool, SpoolConfig

    workdir = Path(tempfile.mkdtemp(prefix="repro-drill-"))
    spool_dir = workdir / "spool"
    report: dict = {"spool": str(spool_dir)}

    # 1. Fill the queue to its bound before any daemon exists.
    JobSpool.ensure(spool_dir, SpoolConfig(max_depth=len(APPS), lease_ttl=2.0))
    jids: list[str] = []
    for app in APPS:
        p = _cli("submit", "--spool", str(spool_dir), "sweep", app,
                 "--stop", str(SLICE_STOP), "--n-instructions", str(N_INSTR))
        if p.returncode != 0:
            _fail(f"submit {app} rc={p.returncode}: {p.stderr}")
        jids.append(p.stdout.strip())
    print(f"service_drill: {len(jids)} jobs spooled")

    # 2. The over-bound submission must shed with the typed exit code.
    p = _cli("submit", "--spool", str(spool_dir), "sweep", "swim",
             "--stop", str(SLICE_STOP), "--n-instructions", str(N_INSTR))
    if p.returncode != 12:
        _fail(f"overload submission: expected exit 12, got {p.returncode} "
              f"(stderr: {p.stderr!r})")
    print(f"service_drill: overload shed with exit 12 ({p.stderr.strip()})")
    report["overload_exit"] = p.returncode

    # 3. Serve with chaos: SIGKILL generation-1 workers mid-sweep.
    t0 = time.monotonic()
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--spool", str(spool_dir),
         "--workers", "2", "--max-depth", str(len(APPS)),
         "--lease-ttl", "2", "--heartbeat-timeout", "5",
         "--drain-on-idle", "--max-runtime", "120",
         "--chaos-sigkill-at", "30", "--seed", str(SEED)],
        stderr=subprocess.PIPE, text=True)

    # 3b. While it runs, murder one worker from outside too (operator-style:
    # pid from the heartbeat file). Best-effort — chaos may get there first.
    spool = JobSpool.open(spool_dir)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        beats = spool.heartbeats()
        if beats:
            from repro.robust.chaos import sigkill_process

            victim, beat = sorted(beats.items())[0]
            if sigkill_process(int(beat["pid"])):
                print(f"service_drill: externally SIGKILLed {victim} "
                      f"(pid {beat['pid']})")
                report["external_kill"] = victim
            break
        time.sleep(0.05)

    try:
        rc = serve.wait(timeout=150)
    except subprocess.TimeoutExpired:
        serve.kill()
        _fail("serve did not drain within 150s")
    serve_err = serve.stderr.read() if serve.stderr else ""
    report["serve_exit"] = rc
    report["serve_seconds"] = round(time.monotonic() - t0, 2)
    if rc != 0:
        _fail(f"serve rc={rc}: {serve_err}")
    print(f"service_drill: serve drained cleanly in "
          f"{report['serve_seconds']}s")

    # 4. Every job done; at least one was re-dispatched after a kill.
    p = _cli("jobs", "--spool", str(spool_dir), "--json")
    views = [json.loads(line) for line in p.stdout.splitlines()]
    not_done = [v["id"] for v in views if v["state"] != "done"]
    if not_done:
        _fail(f"jobs not done after drain: {not_done}")
    redispatched = sum(v["n_expired"] for v in views)
    report["n_jobs"] = len(views)
    report["n_redispatched_leases"] = redispatched
    if redispatched < 1:
        _fail("no lease ever expired — the kill drill did not exercise "
              "re-dispatch")
    print(f"service_drill: all {len(views)} jobs done, "
          f"{redispatched} lease(s) re-dispatched after kills")

    # Bit-identity against the serial in-process oracle.
    from repro.simulator import (
        enumerate_design_space,
        get_profile,
        sweep_design_space,
    )

    configs = list(enumerate_design_space())[0:SLICE_STOP]
    for app, jid in zip(APPS, jids):
        oracle = np.asarray(sweep_design_space(
            configs, get_profile(app), n_instructions=N_INSTR))
        got = spool.result(jid)["cycles"]
        if not np.array_equal(oracle, got):
            _fail(f"{app}: service result differs from serial oracle")
    report["bit_identical"] = True
    print("service_drill: results bit-identical to the serial oracle")

    # 5. A job whose deadline already passed must fail with exit 14 —
    # through a live daemon, observed by a blocking client. Ending the
    # daemon with SIGTERM also proves the graceful-drain path.
    serve2 = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--spool", str(spool_dir),
         "--workers", "1", "--max-runtime", "60", "--seed", str(SEED)],
        stderr=subprocess.PIPE, text=True)
    try:
        p = _cli("submit", "--spool", str(spool_dir), "sweep", "swim",
                 "--stop", "10", "--n-instructions", str(N_INSTR),
                 "--deadline", "0.000001", "--wait", "--timeout", "30")
        if p.returncode != 14:
            _fail(f"deadline job: expected exit 14, got {p.returncode} "
                  f"(stderr: {p.stderr!r})")
        report["deadline_exit"] = p.returncode
        print("service_drill: expired-deadline job failed with exit 14")
    finally:
        serve2.terminate()
    try:
        rc = serve2.wait(timeout=30)
    except subprocess.TimeoutExpired:
        serve2.kill()
        _fail("serve did not drain on SIGTERM within 30s")
    if rc != 0:
        _fail(f"SIGTERM drain: serve rc={rc}")
    report["sigterm_drain_exit"] = rc
    print("service_drill: SIGTERM drained the daemon cleanly")

    # 6. Observability plane: traced-vs-untraced chaos drill.
    obs_drill(workdir, out_dir, report)

    # Artifacts.
    shutil.copy(spool_dir / "spool.jsonl", out_dir / "BENCH_service_spool.jsonl")
    (out_dir / "BENCH_service_jobs.txt").write_text(
        _cli("jobs", "--spool", str(spool_dir)).stdout)
    (out_dir / "BENCH_service_drill.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"service_drill: artifacts in {out_dir}")
    print("service_drill: OK")
    shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
