"""Service drill: kill a worker mid-run and prove nothing is lost.

End-to-end exercise of the fault-tolerant job service through its public
surface only (the ``repro serve`` / ``submit`` / ``jobs`` CLI plus the
spool directory), the way CI drives it:

1. **Pre-daemon submission** — a spool is created with a depth bound of 4
   and filled to that bound with real sweep jobs before any daemon exists
   (the queue is durable; the daemon is optional at submission time).
2. **Typed load shedding** — the fifth submission must be *rejected*, not
   queued and not hung, with the :class:`~repro.errors.ServiceOverloadError`
   exit code (12).
3. **Kill a worker mid-run** — the daemon starts with a chaos injector
   that SIGKILLs the first-generation workers mid-sweep. The supervisor
   must detect the deaths, restart the shards, re-dispatch the expired
   leases, and resume each interrupted job from its checkpoint journal.
4. **Bit-identical results** — every job's cycle vector must equal the
   serial in-process oracle exactly. Crash recovery that changes results
   is worse than crashing.
5. **External SIGKILL + deadline** — one more worker is murdered from
   outside (pid read from its heartbeat file, as an operator would), and a
   job submitted with an already-impossible deadline must fail with the
   :class:`~repro.errors.JobDeadlineExceeded` exit code (14).

Artifacts (spool event log, job listing, drill report JSON) are copied to
``benchmarks/results/`` for CI upload.

Run::

    PYTHONPATH=src python benchmarks/service_drill.py [--out-dir PATH]

Exit codes: 0 ok; 2 a drill invariant failed (details on stderr).
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

APPS = ("gcc", "mcf", "gzip", "art")
SLICE_STOP = 60
N_INSTR = 1_000_000
SEED = 7


def _fail(msg: str) -> None:
    print(f"service_drill: FAIL: {msg}", file=sys.stderr)
    sys.exit(2)


def _cli(*argv: str, env: dict | None = None) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, "-m", "repro", *argv],
                          capture_output=True, text=True, env=env)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=None,
                        help="artifact directory (default benchmarks/results)")
    args = parser.parse_args()
    out_dir = Path(args.out_dir) if args.out_dir else \
        Path(__file__).parent / "results"
    out_dir.mkdir(parents=True, exist_ok=True)

    from repro.service import JobSpool, SpoolConfig

    workdir = Path(tempfile.mkdtemp(prefix="repro-drill-"))
    spool_dir = workdir / "spool"
    report: dict = {"spool": str(spool_dir)}

    # 1. Fill the queue to its bound before any daemon exists.
    JobSpool.ensure(spool_dir, SpoolConfig(max_depth=len(APPS), lease_ttl=2.0))
    jids: list[str] = []
    for app in APPS:
        p = _cli("submit", "--spool", str(spool_dir), "sweep", app,
                 "--stop", str(SLICE_STOP), "--n-instructions", str(N_INSTR))
        if p.returncode != 0:
            _fail(f"submit {app} rc={p.returncode}: {p.stderr}")
        jids.append(p.stdout.strip())
    print(f"service_drill: {len(jids)} jobs spooled")

    # 2. The over-bound submission must shed with the typed exit code.
    p = _cli("submit", "--spool", str(spool_dir), "sweep", "swim",
             "--stop", str(SLICE_STOP), "--n-instructions", str(N_INSTR))
    if p.returncode != 12:
        _fail(f"overload submission: expected exit 12, got {p.returncode} "
              f"(stderr: {p.stderr!r})")
    print(f"service_drill: overload shed with exit 12 ({p.stderr.strip()})")
    report["overload_exit"] = p.returncode

    # 3. Serve with chaos: SIGKILL generation-1 workers mid-sweep.
    t0 = time.monotonic()
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--spool", str(spool_dir),
         "--workers", "2", "--max-depth", str(len(APPS)),
         "--lease-ttl", "2", "--heartbeat-timeout", "5",
         "--drain-on-idle", "--max-runtime", "120",
         "--chaos-sigkill-at", "30", "--seed", str(SEED)],
        stderr=subprocess.PIPE, text=True)

    # 3b. While it runs, murder one worker from outside too (operator-style:
    # pid from the heartbeat file). Best-effort — chaos may get there first.
    spool = JobSpool.open(spool_dir)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        beats = spool.heartbeats()
        if beats:
            from repro.robust.chaos import sigkill_process

            victim, beat = sorted(beats.items())[0]
            if sigkill_process(int(beat["pid"])):
                print(f"service_drill: externally SIGKILLed {victim} "
                      f"(pid {beat['pid']})")
                report["external_kill"] = victim
            break
        time.sleep(0.05)

    try:
        rc = serve.wait(timeout=150)
    except subprocess.TimeoutExpired:
        serve.kill()
        _fail("serve did not drain within 150s")
    serve_err = serve.stderr.read() if serve.stderr else ""
    report["serve_exit"] = rc
    report["serve_seconds"] = round(time.monotonic() - t0, 2)
    if rc != 0:
        _fail(f"serve rc={rc}: {serve_err}")
    print(f"service_drill: serve drained cleanly in "
          f"{report['serve_seconds']}s")

    # 4. Every job done; at least one was re-dispatched after a kill.
    p = _cli("jobs", "--spool", str(spool_dir), "--json")
    views = [json.loads(line) for line in p.stdout.splitlines()]
    not_done = [v["id"] for v in views if v["state"] != "done"]
    if not_done:
        _fail(f"jobs not done after drain: {not_done}")
    redispatched = sum(v["n_expired"] for v in views)
    report["n_jobs"] = len(views)
    report["n_redispatched_leases"] = redispatched
    if redispatched < 1:
        _fail("no lease ever expired — the kill drill did not exercise "
              "re-dispatch")
    print(f"service_drill: all {len(views)} jobs done, "
          f"{redispatched} lease(s) re-dispatched after kills")

    # Bit-identity against the serial in-process oracle.
    from repro.simulator import (
        enumerate_design_space,
        get_profile,
        sweep_design_space,
    )

    configs = list(enumerate_design_space())[0:SLICE_STOP]
    for app, jid in zip(APPS, jids):
        oracle = np.asarray(sweep_design_space(
            configs, get_profile(app), n_instructions=N_INSTR))
        got = spool.result(jid)["cycles"]
        if not np.array_equal(oracle, got):
            _fail(f"{app}: service result differs from serial oracle")
    report["bit_identical"] = True
    print("service_drill: results bit-identical to the serial oracle")

    # 5. A job whose deadline already passed must fail with exit 14 —
    # through a live daemon, observed by a blocking client. Ending the
    # daemon with SIGTERM also proves the graceful-drain path.
    serve2 = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--spool", str(spool_dir),
         "--workers", "1", "--max-runtime", "60", "--seed", str(SEED)],
        stderr=subprocess.PIPE, text=True)
    try:
        p = _cli("submit", "--spool", str(spool_dir), "sweep", "swim",
                 "--stop", "10", "--n-instructions", str(N_INSTR),
                 "--deadline", "0.000001", "--wait", "--timeout", "30")
        if p.returncode != 14:
            _fail(f"deadline job: expected exit 14, got {p.returncode} "
                  f"(stderr: {p.stderr!r})")
        report["deadline_exit"] = p.returncode
        print("service_drill: expired-deadline job failed with exit 14")
    finally:
        serve2.terminate()
    try:
        rc = serve2.wait(timeout=30)
    except subprocess.TimeoutExpired:
        serve2.kill()
        _fail("serve did not drain on SIGTERM within 30s")
    if rc != 0:
        _fail(f"SIGTERM drain: serve rc={rc}")
    report["sigterm_drain_exit"] = rc
    print("service_drill: SIGTERM drained the daemon cleanly")

    # Artifacts.
    shutil.copy(spool_dir / "spool.jsonl", out_dir / "BENCH_service_spool.jsonl")
    (out_dir / "BENCH_service_jobs.txt").write_text(
        _cli("jobs", "--spool", str(spool_dir)).stdout)
    (out_dir / "BENCH_service_drill.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"service_drill: artifacts in {out_dir}")
    print("service_drill: OK")
    shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
