"""Seeded synthetic cache-access traces for offline eviction-policy replay.

Four workload shapes cover the access patterns repeated design-space
sweeps and the job service actually produce, so ``cache_oracle.py`` can
evaluate every eviction policy without any recorded data:

``static``
    A stable hot set absorbs most references; the cold majority is sampled
    uniformly. The baseline every policy should handle (LFU's best case).
``phase_shift``
    The hot set relocates wholesale every phase — a new application's
    sweeps arriving at the service. Punishes frequency bias (LFU keys from
    a dead phase squat on capacity).
``oscillating``
    Two working sets alternate on a fixed period (diurnal traffic between
    two tenants). Rewards policies that re-learn quickly.
``scan``
    A small hot set plus repeated long sequential scans over a region far
    larger than any reasonable capacity — the classic LRU killer (each
    scan flushes the hot set out of a recency-only cache).

Every generator is a pure function of the seed (``random.Random``
streams, no global state), so hit rates replayed from these traces are
exact, pinnable constants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["SyntheticTrace", "TraceGenerator", "WORKLOADS"]

#: Workload names in the order the oracle report lists them.
WORKLOADS = ("static", "phase_shift", "oscillating", "scan")


@dataclass(frozen=True)
class SyntheticTrace:
    """One generated access sequence plus its provenance."""

    name: str
    seed: int
    keys: list[str] = field(repr=False)

    @property
    def n_requests(self) -> int:
        return len(self.keys)

    @property
    def n_distinct(self) -> int:
        return len(set(self.keys))


class TraceGenerator:
    """Deterministic generator for the four synthetic workload shapes."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def _rng(self, stream: str) -> random.Random:
        return random.Random(f"{self.seed}/{stream}")

    @staticmethod
    def _key(i: int) -> str:
        return f"k{i:06d}"

    def static(self, n_requests: int = 20000, n_keys: int = 600,
               hot_fraction: float = 0.1, hot_weight: float = 0.85,
               ) -> SyntheticTrace:
        """Stable hot set: ``hot_weight`` of references to the hot minority."""
        rng = self._rng("static")
        n_hot = max(1, int(n_keys * hot_fraction))
        keys = []
        for _ in range(n_requests):
            if rng.random() < hot_weight:
                keys.append(self._key(rng.randrange(n_hot)))
            else:
                keys.append(self._key(n_hot + rng.randrange(n_keys - n_hot)))
        return SyntheticTrace("static", self.seed, keys)

    def phase_shift(self, n_requests: int = 20000, n_phases: int = 4,
                    keys_per_phase: int = 150, hot_weight: float = 0.85,
                    overlap: float = 0.0) -> SyntheticTrace:
        """Hot set relocates wholesale every ``n_requests / n_phases``."""
        rng = self._rng("phase_shift")
        per_phase = n_requests // n_phases
        stride = max(1, int(keys_per_phase * (1.0 - overlap)))
        keys = []
        for phase in range(n_phases):
            base = phase * stride
            for _ in range(per_phase):
                if rng.random() < hot_weight:
                    keys.append(self._key(base + rng.randrange(keys_per_phase)))
                else:
                    keys.append(self._key(10_000 + rng.randrange(2000)))
        return SyntheticTrace("phase_shift", self.seed, keys)

    def oscillating(self, n_requests: int = 20000, set_size: int = 120,
                    period: int = 2000) -> SyntheticTrace:
        """Two working sets alternate every ``period`` requests."""
        rng = self._rng("oscillating")
        keys = []
        for i in range(n_requests):
            which = (i // period) % 2
            base = which * set_size
            keys.append(self._key(base + rng.randrange(set_size)))
        return SyntheticTrace("oscillating", self.seed, keys)

    def scan(self, n_requests: int = 20000, n_hot: int = 50,
             scan_length: int = 900, hot_weight: float = 0.6,
             ) -> SyntheticTrace:
        """Hot set interleaved with repeated long sequential scans.

        The scan cursor walks a ``scan_length``-key region round-robin, so
        scan keys *do* recur — but with a reuse distance of
        ``scan_length / (1 - hot_weight)`` interleaved references, far past
        any capacity the oracle sweeps. A recency-only cache keeps evicting
        hot keys to make room for scan keys it will not see again in time.
        """
        rng = self._rng("scan")
        keys = []
        cursor = 0
        for _ in range(n_requests):
            if rng.random() < hot_weight:
                keys.append(self._key(rng.randrange(n_hot)))
            else:
                keys.append(self._key(100_000 + cursor))
                cursor = (cursor + 1) % scan_length
        return SyntheticTrace("scan", self.seed, keys)

    def all_traces(self) -> dict[str, SyntheticTrace]:
        """Every workload at its default size, name-keyed (stable order)."""
        return {
            "static": self.static(),
            "phase_shift": self.phase_shift(),
            "oscillating": self.oscillating(),
            "scan": self.scan(),
        }
