"""Table 3: average sampled-DSE accuracy across the five applications.

Paper values (mean %error over apps): at 1% sampling LR-B 4.2 / NN-E 3.48 /
NN-S 5.94 / select 3.4; at 5% LR-B 3.8 / NN-E 0.88 / NN-S 1.5 / select 0.88.
The select row shows the meta-method that deploys whichever model has the
lowest cross-validation estimate.
"""

import numpy as np

from repro.core import SAMPLED_DSE_MODELS, table3
from repro.simulator import PRESENTED_APPS


def test_table3(benchmark, dse_cache, emit):
    def build():
        return {app: dse_cache(app) for app in PRESENTED_APPS}

    per_app = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("table3", f"[Table 3] {table3(per_app, SAMPLED_DSE_MODELS)}")

    rates = [r.rate for r in per_app["applu"]]
    lo, hi = 0, len(rates) - 1

    def avg(label, i):
        return float(np.mean([per_app[a][i].outcomes[label].true_error
                              for a in PRESENTED_APPS]))

    def avg_select(i):
        return float(np.mean([per_app[a][i].select_true_error
                              for a in PRESENTED_APPS]))

    # NN-E improves sharply with the sampling rate (3.48 -> 0.88 in paper).
    assert avg("NN-E", hi) < avg("NN-E", lo)
    assert avg("NN-E", hi) < 3.0
    # LR-B stays comparatively flat ("very little change occurs for linear
    # regression models").
    assert abs(avg("LR-B", hi) - avg("LR-B", lo)) < 0.5 * avg("LR-B", lo)
    # At the highest rate the neural network clearly beats linear regression.
    assert avg("NN-E", hi) < avg("LR-B", hi)
    # The select meta-method tracks the best candidate closely.
    best_hi = min(avg(lbl, hi) for lbl in SAMPLED_DSE_MODELS)
    assert avg_select(hi) <= 2.0 * best_hi + 0.5
