"""Substrate micro-benchmarks: throughput of the building blocks.

These use pytest-benchmark's normal repeated timing (they are fast), giving
a performance-regression baseline for the simulator and ML kernels.
"""

import numpy as np
import pytest

from repro.ml.nn.network import MLP
from repro.ml.nn.training import TrainingConfig, train
from repro.simulator import (
    Cache,
    enumerate_design_space,
    generate_trace,
    get_profile,
    make_predictor,
    simulate_predictor,
    sweep_design_space,
)
from repro.simulator.simpoint import kmeans

SEED = 2008


@pytest.fixture(scope="module")
def configs():
    return list(enumerate_design_space())


def test_bench_interval_sweep(benchmark, configs):
    """Full 4608-config interval-model sweep (the paper's 'simulate all')."""
    prof = get_profile("mcf")
    cycles = benchmark(lambda: sweep_design_space(configs, prof))
    assert cycles.shape == (4608,)


def test_bench_trace_generation(benchmark):
    """Synthetic trace generation throughput (100k instructions)."""
    prof = get_profile("gcc")
    trace = benchmark.pedantic(
        lambda: generate_trace(prof, 100_000, seed=SEED), rounds=3, iterations=1
    )
    assert len(trace) == 100_000


def test_bench_cache_stream(benchmark):
    """Detailed L1 simulation throughput (100k accesses)."""
    rng = np.random.default_rng(SEED)
    addrs = (rng.zipf(1.3, 100_000) * 32 % (1 << 26)).astype(np.uint64)

    def run():
        cache = Cache(32 * 1024, 32, 4)
        return cache.access_stream(addrs)

    hits = benchmark.pedantic(run, rounds=3, iterations=1)
    assert hits.shape == (100_000,)


def test_bench_branch_predictor(benchmark):
    """Combining-predictor simulation throughput (50k branches)."""
    trace = generate_trace(get_profile("gcc"), 250_000, seed=SEED)
    mask = trace.branch_mask
    pcs, taken = trace.pc[mask], trace.taken[mask]

    def run():
        return simulate_predictor(make_predictor("combining"), pcs, taken)

    miss = benchmark.pedantic(run, rounds=3, iterations=1)
    assert 0.0 < miss.mean() < 0.5


def test_bench_nn_training(benchmark):
    """Rprop training of a mid-size MLP (200 x 24 samples, 500 epochs)."""
    rng = np.random.default_rng(SEED)
    X = rng.random((200, 24))
    y = 0.2 + 0.5 * X[:, 0] * X[:, 1] + 0.2 * X[:, 2]

    def run():
        net = MLP([24, 28, 1], np.random.default_rng(SEED))
        train(net, X, y, TrainingConfig(max_epochs=500))
        return net.loss(X, y)

    loss = benchmark.pedantic(run, rounds=3, iterations=1)
    assert loss < 1e-3


def test_bench_kmeans(benchmark):
    """k-means over SimPoint-scale BBV projections (500 x 15, k=8)."""
    rng = np.random.default_rng(SEED)
    X = rng.random((500, 15))

    def run():
        return kmeans(X, 8, np.random.default_rng(SEED))

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.k == 8
