"""Parallel-executor scaling ablation for the design-space sweep.

The interval model makes a single sweep cheap, but the same executor fans
out detailed simulations and model batteries; this benchmark records the
serial vs process-pool cost of a representative CPU-bound task fan-out.
"""

import numpy as np

from repro.parallel import ProcessExecutor, SerialExecutor


def _simulate_chunk(seed: int) -> float:
    """A CPU-bound stand-in task (~small detailed-simulation slice)."""
    rng = np.random.default_rng(seed)
    acc = 0.0
    x = rng.random(20_000)
    for _ in range(40):
        acc += float(np.sin(x).sum())
        x = (x * 1.000001) % 1.0
    return acc


TASKS = list(range(16))


def test_bench_serial_fanout(benchmark):
    results = benchmark.pedantic(
        lambda: SerialExecutor().map(_simulate_chunk, TASKS),
        rounds=1, iterations=1,
    )
    assert len(results) == len(TASKS)


def test_bench_process_fanout(benchmark):
    with ProcessExecutor() as ex:
        ex.map(_simulate_chunk, TASKS[:1])  # warm the pool outside timing
        results = benchmark.pedantic(
            lambda: ex.map(_simulate_chunk, TASKS),
            rounds=1, iterations=1,
        )
    assert len(results) == len(TASKS)
    serial = SerialExecutor().map(_simulate_chunk, TASKS)
    np.testing.assert_allclose(results, serial)
