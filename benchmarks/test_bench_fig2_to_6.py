"""Figures 2-6: estimated vs. true error for the five presented applications.

Each benchmark regenerates one figure: NN-E / NN-S / LR-B true error plus
their cross-validation estimates across 1-5% sampling of the 4608-point
design space, exactly the series the paper plots per application.
"""

import pytest

from repro.core import SAMPLED_DSE_MODELS, figure_sampled_series
from repro.simulator import PRESENTED_APPS

FIGURE_OF = {"applu": 2, "equake": 3, "gcc": 4, "mcf": 5, "mesa": 6}


@pytest.mark.parametrize("app", PRESENTED_APPS)
def test_fig_sampled(app, benchmark, dse_cache, emit):
    results = benchmark.pedantic(dse_cache, args=(app,), rounds=1, iterations=1)
    text = figure_sampled_series(app, results, SAMPLED_DSE_MODELS)
    emit(f"fig{FIGURE_OF[app]}_{app}", f"[Figure {FIGURE_OF[app]}] {text}")

    # Shape assertions mirroring the paper's qualitative claims (§4.2).
    first, last = results[0], results[-1]
    # Errors bounded: the paper's figure axes top out at 3-14% per app.
    for res in results:
        for outcome in res.outcomes.values():
            assert outcome.true_error < 25.0
    # NN-E improves (or holds) as the sampling rate grows 1% -> 5%.
    assert last.outcomes["NN-E"].true_error <= first.outcomes["NN-E"].true_error + 1.0
    # CV estimates land in the same regime as the true errors.
    for res in results:
        o = res.outcomes["NN-E"]
        assert o.estimated_error_max <= 6 * max(o.true_error, 1.0)
